package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"butterfly/internal/obsv"
	"butterfly/serveapi"
)

// Config tunes a Router. Shards is the only required field.
type Config struct {
	// Shards are the base URLs of the shard daemons, e.g.
	// "http://127.0.0.1:9001". At least one is required.
	Shards []string
	// Replicas is the placement width of unpartitioned graphs: writes
	// go to the first Replicas ring successors, reads rotate across
	// them (with read-your-writes via version floors). ≤ 1 disables
	// replication.
	Replicas int
	// VNodes is the consistent-hash virtual-node count per shard;
	// ≤ 0 means DefaultVNodes.
	VNodes int
	// Retries is how many times a request to one shard is retried on a
	// network error before the router moves to the next candidate (or
	// gives up); ≤ 0 means 2.
	Retries int
	// RetryBackoff is the base delay between those retries, growing
	// linearly per attempt; ≤ 0 means 25ms.
	RetryBackoff time.Duration
	// PartialTimeout is the per-shard deadline of a scatter-gather
	// partial fetch; a partition that misses it is treated as down and
	// the count degrades to the partition-sampling estimate. ≤ 0 means
	// 15s.
	PartialTimeout time.Duration
	// MaxIdleConnsPerHost sizes the keep-alive pool to each shard on
	// the default client. Scatter-gather fans out to every shard at
	// once, so the net/http default of 2 idle connections per host
	// forces most of the fan-out through fresh TCP handshakes; ≤ 0
	// means 64. Ignored when Client is set.
	MaxIdleConnsPerHost int
	// Client is the HTTP client used to talk to shards; nil gets a
	// client with a 2-minute overall timeout over a keep-alive-tuned
	// transport (see MaxIdleConnsPerHost).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.PartialTimeout <= 0 {
		c.PartialTimeout = 15 * time.Second
	}
	if c.MaxIdleConnsPerHost <= 0 {
		c.MaxIdleConnsPerHost = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        4 * c.MaxIdleConnsPerHost,
				MaxIdleConnsPerHost: c.MaxIdleConnsPerHost,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return c
}

// graphMeta is what the router remembers about one logical graph:
// whether it is partitioned, the version floor its reads must observe
// (read-your-writes), and a rotation cursor for replica reads.
type graphMeta struct {
	partitions int // ≥ 2 for partitioned graphs
	floor      atomic.Uint64
	rr         atomic.Uint32

	// pc pins partition partials and the merged count between
	// mutations (partitioned graphs only; see partialcache.go).
	pc partialCache
}

// Router is the bfserved cluster front door: an http.Handler serving
// the /v1 surface by proxying to shard daemons placed on a
// consistent-hash ring, with scatter-gather reduction for partitioned
// graphs. Stateless apart from routing metadata — restart one, point
// it at the same shards, call Refresh, and it serves identically.
type Router struct {
	cfg Config
	hc  *http.Client
	mux *http.ServeMux

	mu     sync.RWMutex
	ring   *Ring
	graphs map[string]*graphMeta

	// flights coalesces concurrent partitioned gathers per
	// (graph, cache generation).
	flights flightGroup

	draining atomic.Bool

	reg           *obsv.Registry
	reqs          *obsv.CounterVec // route, code
	shardReqs     *obsv.CounterVec // shard
	shardSecs     *obsv.HistogramVec
	shardErrs     *obsv.CounterVec // shard, kind
	degraded      *obsv.CounterVec
	rebalMoves    *obsv.CounterVec
	partialHits   *obsv.CounterVec // kind: merged | delta | noop
	partialMisses *obsv.CounterVec // reason: cold | full
	coalesced     *obsv.CounterVec
}

// New builds a Router over cfg.Shards. It does not touch the network;
// call Refresh to discover graphs already resident on the shards
// (e.g. after a router restart).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: at least one shard is required")
	}
	for _, s := range cfg.Shards {
		u, err := url.Parse(s)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: shard %q is not an absolute URL", s)
		}
	}
	rt := &Router{
		cfg:    cfg,
		hc:     cfg.Client,
		ring:   NewRing(cfg.Shards, cfg.VNodes),
		graphs: make(map[string]*graphMeta),
		reg:    obsv.NewRegistry(),
	}
	rt.reqs = rt.reg.Counter("bfrouter_requests_total", "Requests served by the router, by route and status code.", "route", "code")
	rt.shardReqs = rt.reg.Counter("bfrouter_shard_requests_total", "Requests forwarded to each shard.", "shard")
	rt.shardSecs = rt.reg.Histogram("bfrouter_shard_seconds", "Latency of forwarded shard requests.", obsv.LatencyBuckets, "shard")
	rt.shardErrs = rt.reg.Counter("bfrouter_shard_errors_total", "Forwarding failures by shard and kind.", "shard", "kind")
	rt.degraded = rt.reg.Counter("bfrouter_degraded_total", "Scatter-gather answers degraded to the partition-sampling estimate.")
	rt.rebalMoves = rt.reg.Counter("bfrouter_rebalance_moves_total", "Graphs relocated by /admin/rebalance.")
	rt.partialHits = rt.reg.Counter("bfrouter_partial_cache_hits_total", "Partition partials served from router state: merged = no shard traffic at all, delta = changed keys only, noop = unchanged-partition revalidation.", "kind")
	rt.partialMisses = rt.reg.Counter("bfrouter_partial_cache_misses_total", "Full partial-map transfers: cold = nothing pinned, full = shard could not serve a delta (history evicted or epoch changed).", "reason")
	rt.coalesced = rt.reg.Counter("bfrouter_coalesced_total", "Partitioned count/estimate requests that joined another request's in-flight gather instead of starting their own.")
	rt.routes()
	return rt, nil
}

// Drain flips healthz to 503 "draining" for load-balancer removal.
func (rt *Router) Drain() { rt.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// currentRing returns the active membership view.
func (rt *Router) currentRing() *Ring {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring
}

// metaOf returns the routing metadata of a logical graph, or nil if
// the router has never seen it (unknown graphs route as unpartitioned
// with no floor).
func (rt *Router) metaOf(name string) *graphMeta {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.graphs[name]
}

// ensureMeta returns (creating if needed) the metadata of a graph.
// partitions < 2 records an unpartitioned graph.
func (rt *Router) ensureMeta(name string, partitions int) *graphMeta {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := rt.graphs[name]
	if m == nil {
		m = &graphMeta{}
		rt.graphs[name] = m
	}
	if partitions >= 2 {
		m.partitions = partitions
	}
	return m
}

func (rt *Router) forgetMeta(name string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.graphs, name)
}

// routes wires the router's /v1 surface. The router is /v1-only: it
// postdates the legacy alias and there is no pre-/v1 cluster client
// to stay compatible with. /healthz and /metrics stay unversioned as
// infrastructure, matching single-node bfserved.
func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	eps := []struct {
		pattern, route string
		h              http.HandlerFunc
	}{
		{"GET /healthz", "healthz", rt.handleHealthz},
		{"GET /v1/healthz", "healthz", rt.handleHealthz},
		{"GET /v1/graphs", "graphs.list", rt.handleList},
		{"POST /v1/graphs", "graphs.register", rt.handleRegister},
		{"GET /v1/graphs/{name}", "graphs.info", rt.handleInfo},
		{"DELETE /v1/graphs/{name}", "graphs.drop", rt.handleDrop},
		{"POST /v1/graphs/{name}/count", "count", rt.handleCount},
		{"POST /v1/graphs/{name}/estimate", "estimate", rt.handleEstimate},
		{"POST /v1/graphs/{name}/mutate", "mutate", rt.handleMutate},
		{"POST /v1/graphs/{name}/vertex-counts", "vertex-counts", rt.handleReadProxy("/vertex-counts")},
		{"POST /v1/graphs/{name}/edge-supports", "edge-supports", rt.handleReadProxy("/edge-supports")},
		{"POST /v1/graphs/{name}/peel", "peel", rt.handleReadProxy("/peel")},
		{"POST /v1/ingest", "ingest.open", rt.handleIngestOpen},
		{"GET /v1/ingest/{name}", "ingest.status", rt.handleIngest("")},
		{"POST /v1/ingest/{name}/edges", "ingest.append", rt.handleIngest("/edges")},
		{"POST /v1/ingest/{name}/seal", "ingest.seal", rt.handleIngest("/seal")},
		{"DELETE /v1/ingest/{name}", "ingest.abort", rt.handleIngest("")},
		{"POST /v1/admin/checkpoint", "admin.checkpoint", rt.handleCheckpoint},
		{"POST /admin/checkpoint", "admin.checkpoint", rt.handleCheckpoint},
		{"POST /v1/admin/rebalance", "admin.rebalance", rt.handleRebalance},
		{"POST /admin/rebalance", "admin.rebalance", rt.handleRebalance},
	}
	for _, ep := range eps {
		rt.mux.HandleFunc(ep.pattern, rt.instrument(ep.route, ep.h))
	}
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
}

// instrument counts requests per route and status code.
func (rt *Router) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		rt.reqs.With(route, strconv.Itoa(sw.code)).Inc()
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// writeErr emits the /v1 error envelope.
func (rt *Router) writeErr(w http.ResponseWriter, status int, code, msg string, retryMS int64) {
	if retryMS > 0 {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serveapi.ErrorEnvelope{
		Error: serveapi.ErrorDetail{Code: code, Message: msg, RetryAfterMS: retryMS},
	})
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// --- shard transport ---

// shardResp is one shard's buffered answer. Bodies on this API are
// small (JSON, or a partial map bounded by the shard's wedge count),
// so buffering keeps retry and fan-out logic simple.
type shardResp struct {
	status int
	header http.Header
	body   []byte
}

// retryDelay is the wait before retry `attempt` (≥ 1): linear backoff
// with ±50% jitter. Without the jitter, a shard hiccup makes every
// fanned-out gather goroutine retry in lockstep, re-spiking the shard
// at exactly the moment it is trying to recover.
func (rt *Router) retryDelay(attempt int) time.Duration {
	base := rt.cfg.RetryBackoff * time.Duration(attempt)
	return base/2 + rand.N(base)
}

// forward issues one request to one shard, with cfg.Retries jittered
// linear-backoff retries on network errors. Non-2xx statuses are
// returned, not retried — the caller decides which are worth another
// candidate. hdr carries extra headers to relay shard-ward (the QoS
// identity of the originating client, via tenantHeaders); nil for
// router-internal traffic, which runs as the shard's default tenant.
func (rt *Router) forward(ctx context.Context, shard, method, pathQuery string, contentType string, floor uint64, hdr http.Header, body []byte) (*shardResp, error) {
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(rt.retryDelay(attempt)):
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, shard+pathQuery, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if floor > 0 {
			req.Header.Set("X-Bf-Min-Version", strconv.FormatUint(floor, 10))
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		rt.shardReqs.With(shard).Inc()
		start := time.Now()
		resp, err := rt.hc.Do(req)
		rt.shardSecs.With(shard).Observe(time.Since(start).Seconds())
		if err != nil {
			rt.shardErrs.With(shard, "network").Inc()
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		resp.Body.Close()
		if err != nil {
			rt.shardErrs.With(shard, "body").Inc()
			lastErr = err
			continue
		}
		if resp.StatusCode/100 == 5 {
			rt.shardErrs.With(shard, strconv.Itoa(resp.StatusCode)).Inc()
		}
		return &shardResp{status: resp.StatusCode, header: resp.Header, body: b}, nil
	}
	return nil, fmt.Errorf("shard %s unreachable: %w", shard, lastErr)
}

// tenantHeaders extracts the QoS identity a client attached to its
// request, for relay to the shard that will charge and schedule it.
func tenantHeaders(r *http.Request) http.Header {
	var h http.Header
	for _, k := range []string{serveapi.TenantHeader, serveapi.PriorityHeader} {
		if v := r.Header.Get(k); v != "" {
			if h == nil {
				h = http.Header{}
			}
			h.Set(k, v)
		}
	}
	return h
}

// relay copies a shard's answer to the client, stamping which shard
// served it. The tenant and priority echoes pass through so a caller
// behind the router still sees what it was charged as.
func relay(w http.ResponseWriter, sr *shardResp, shard string) {
	for _, h := range []string{"Content-Type", "X-Cache", "X-Degraded", "X-Bf-Version", "Retry-After",
		serveapi.TenantHeader, serveapi.PriorityHeader} {
		if v := sr.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Bf-Shard", shard)
	w.WriteHeader(sr.status)
	_, _ = w.Write(sr.body)
}

// readBody drains the client request body for replay against shards.
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(io.LimitReader(r.Body, 64<<20))
}

// readOrder is the candidate order of a replica read: the successor
// list rotated by the graph's read cursor (spreading load), with the
// primary moved last so the final — authoritative — answer comes from
// the shard that took the write if every replica bounced.
func readOrder(succ []string, rr uint32) []string {
	if len(succ) <= 1 {
		return succ
	}
	primary := succ[0]
	start := int(rr) % len(succ)
	out := append(slices.Clone(succ[start:]), succ[:start]...)
	for i, s := range out {
		if s == primary {
			out = append(append(out[:i:i], out[i+1:]...), primary)
			break
		}
	}
	return out
}

// proxyRead forwards a read across candidates in order. A network
// failure, a 503 (replica behind its floor, or draining), or a 404
// from a non-final candidate (a replica that missed an out-of-band
// registration) advances to the next; the last candidate's answer is
// authoritative either way.
func (rt *Router) proxyRead(w http.ResponseWriter, r *http.Request, name, subpath string, body []byte) {
	ring := rt.currentRing()
	succ := ring.Successors(name, rt.cfg.Replicas)
	if len(succ) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable, "no shards configured", 1000)
		return
	}
	var floor uint64
	var rr uint32
	if m := rt.metaOf(name); m != nil {
		floor = m.floor.Load()
		rr = m.rr.Add(1)
	}
	cands := readOrder(succ, rr)
	pathQuery := "/v1/graphs/" + url.PathEscape(name) + subpath
	if q := r.URL.RawQuery; q != "" {
		pathQuery += "?" + q
	}
	var last *shardResp
	var lastShard string
	var lastErr error
	for i, shard := range cands {
		sr, err := rt.forward(r.Context(), shard, r.Method, pathQuery, r.Header.Get("Content-Type"), floor, tenantHeaders(r), body)
		if err != nil {
			lastErr = err
			continue
		}
		last, lastShard = sr, shard
		final := i == len(cands)-1
		if !final && (sr.status == http.StatusServiceUnavailable || sr.status == http.StatusNotFound) {
			continue
		}
		relay(w, sr, shard)
		return
	}
	if last != nil {
		relay(w, last, lastShard)
		return
	}
	rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
		fmt.Sprintf("all replicas unreachable: %v", lastErr), 1000)
}

// handleReadProxy serves the single-shard read endpoints
// (vertex-counts, edge-supports, peel). Partitioned graphs reject
// them: their per-vertex and peeling structure is not reducible from
// wedge partials (only the total count is), so offering a merged
// answer would be silently wrong.
func (rt *Router) handleReadProxy(subpath string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if m := rt.metaOf(name); m != nil && m.partitions >= 2 {
			rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument,
				fmt.Sprintf("%s is not supported on partitioned graphs (only count/estimate reduce across partitions)", strings.TrimPrefix(subpath, "/")), 0)
			return
		}
		body, err := readBody(r)
		if err != nil {
			rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
			return
		}
		rt.proxyRead(w, r, name, subpath, body)
	}
}

// proxyWrite applies a write to the primary and, on success,
// replicates it best-effort to the remaining successors. Only the
// primary's answer reaches the client; a replica that misses the
// write is behind the floor and read requests skip it until it
// catches up (or a rebalance re-ships it).
func (rt *Router) proxyWrite(w http.ResponseWriter, r *http.Request, name, method, pathQuery string, body, replicaBody []byte) (*shardResp, string) {
	ring := rt.currentRing()
	succ := ring.Successors(name, rt.cfg.Replicas)
	if len(succ) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable, "no shards configured", 1000)
		return nil, ""
	}
	primary := succ[0]
	sr, err := rt.forward(r.Context(), primary, method, pathQuery, "application/json", 0, tenantHeaders(r), body)
	if err != nil {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
			fmt.Sprintf("primary %s unreachable: %v", primary, err), 1000)
		return nil, ""
	}
	if sr.status/100 == 2 && len(succ) > 1 {
		for _, rep := range succ[1:] {
			if _, err := rt.forward(r.Context(), rep, method, pathQuery, "application/json", 0, tenantHeaders(r), replicaBody); err != nil {
				rt.shardErrs.With(rep, "replicate").Inc()
			}
		}
	}
	return sr, primary
}

// --- endpoint handlers ---

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	graphs := len(rt.graphs)
	shards := rt.ring.Len()
	rt.mu.RUnlock()
	h := serveapi.Health{Status: "ok", Role: "router", Graphs: graphs, Shards: shards}
	code := http.StatusOK
	if rt.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, code, &h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.reg.WriteProm(w)
}

// handleList scatters GET /graphs to every shard and merges: replica
// copies collapse to one entry (keeping the newest version seen), and
// partition graphs collapse to one logical entry whose Version and
// NumEdges sum over the partitions. A collapsed entry's Butterflies
// sums the partition-local counts, which counts only butterflies
// whose both wedge centers fell in the same partition — a documented
// lower bound; POST /count is the exact answer.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	ring := rt.currentRing()
	type listOut struct {
		shard string
		list  serveapi.GraphList
		err   error
	}
	nodes := ring.Nodes()
	outs := make([]listOut, len(nodes))
	var wg sync.WaitGroup
	for i, shard := range nodes {
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			sr, err := rt.forward(r.Context(), shard, http.MethodGet, "/v1/graphs", "", 0, tenantHeaders(r), nil)
			if err != nil {
				outs[i] = listOut{shard: shard, err: err}
				return
			}
			var gl serveapi.GraphList
			if err := json.Unmarshal(sr.body, &gl); err != nil {
				outs[i] = listOut{shard: shard, err: err}
				return
			}
			outs[i] = listOut{shard: shard, list: gl}
		}(i, shard)
	}
	wg.Wait()

	merged := map[string]*serveapi.GraphInfo{}
	for _, o := range outs {
		for _, gi := range o.list.Graphs {
			if base, _, p, ok := splitPartName(gi.Name); ok {
				e := merged[base]
				if e == nil {
					e = &serveapi.GraphInfo{Name: base, NumV1: gi.NumV1, NumV2: gi.NumV2, Partitions: p, State: gi.State}
					merged[base] = e
				}
				e.Version += gi.Version
				e.NumEdges += gi.NumEdges
				e.Butterflies += gi.Butterflies
				continue
			}
			e := merged[gi.Name]
			if e == nil || gi.Version > e.Version {
				gi := gi
				merged[gi.Name] = &gi
			}
		}
	}
	out := serveapi.GraphList{Graphs: make([]serveapi.GraphInfo, 0, len(merged))}
	for _, e := range merged {
		if e.NumV1 > 0 && e.NumV2 > 0 {
			e.Density = float64(e.NumEdges) / (float64(e.NumV1) * float64(e.NumV2))
		}
		out.Graphs = append(out.Graphs, *e)
	}
	slices.SortFunc(out.Graphs, func(a, b serveapi.GraphInfo) int { return strings.Compare(a.Name, b.Name) })
	rt.writeJSON(w, http.StatusOK, &out)
}

func (rt *Router) handleInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if m := rt.metaOf(name); m != nil && m.partitions >= 2 {
		rt.partitionedInfo(w, r, name, m)
		return
	}
	rt.proxyRead(w, r, name, "", nil)
}

func (rt *Router) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if m := rt.metaOf(name); m != nil && m.partitions >= 2 {
		rt.partitionedDrop(w, r, name, m)
		return
	}
	pathQuery := "/v1/graphs/" + url.PathEscape(name)
	sr, shard := rt.proxyWrite(w, r, name, http.MethodDelete, pathQuery, nil, nil)
	if sr == nil {
		return
	}
	if sr.status/100 == 2 {
		rt.forgetMeta(name)
	}
	relay(w, sr, shard)
}

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
		return
	}
	var req serveapi.RegisterRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument,
				fmt.Sprintf("invalid request body: %v", err), 0)
			return
		}
	}
	if req.Name == "" {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, "name is required", 0)
		return
	}
	if strings.Contains(req.Name, "@@") {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument,
			`graph names containing "@@" are reserved for cluster partitions`, 0)
		return
	}
	if req.Partitions > 1 {
		rt.partitionedRegister(w, r, &req)
		return
	}
	// Replicated copies force replace=true so a stale copy left on a
	// replica (e.g. from before a rebalance) cannot wedge replication.
	replicaBody := body
	if rt.cfg.Replicas > 1 && !req.Replace {
		rr := req
		rr.Replace = true
		replicaBody, _ = json.Marshal(&rr)
	}
	sr, shard := rt.proxyWrite(w, r, req.Name, http.MethodPost, "/v1/graphs", body, replicaBody)
	if sr == nil {
		return
	}
	if sr.status/100 == 2 {
		var info serveapi.GraphInfo
		if json.Unmarshal(sr.body, &info) == nil {
			rt.ensureMeta(req.Name, 0).floor.Store(info.Version)
		}
	}
	relay(w, sr, shard)
}

func (rt *Router) handleMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := readBody(r)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
		return
	}
	if m := rt.metaOf(name); m != nil && m.partitions >= 2 {
		rt.partitionedMutate(w, r, name, m, body)
		return
	}
	pathQuery := "/v1/graphs/" + url.PathEscape(name) + "/mutate"
	sr, shard := rt.proxyWrite(w, r, name, http.MethodPost, pathQuery, body, body)
	if sr == nil {
		return
	}
	if sr.status/100 == 2 {
		var mr serveapi.MutateResponse
		if json.Unmarshal(sr.body, &mr) == nil {
			rt.ensureMeta(name, 0).floor.Store(mr.Version)
		}
	}
	relay(w, sr, shard)
}

func (rt *Router) handleCount(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := readBody(r)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
		return
	}
	if m := rt.metaOf(name); m != nil && m.partitions >= 2 {
		rt.partitionedCount(w, r, name, m, false)
		return
	}
	rt.proxyRead(w, r, name, "/count", body)
}

func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := readBody(r)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
		return
	}
	if m := rt.metaOf(name); m != nil && m.partitions >= 2 {
		rt.partitionedCount(w, r, name, m, true)
		return
	}
	rt.proxyRead(w, r, name, "/estimate", body)
}

// handleIngestOpen routes a streaming ingest to the name's primary.
// Ingest is primary-only: the reservoir is mutable point state that
// cannot be replicated by request replay, so the graph replicates (if
// at all) only after seal, via rebalance.
func (rt *Router) handleIngestOpen(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
		return
	}
	var req serveapi.IngestRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument,
				fmt.Sprintf("invalid request body: %v", err), 0)
			return
		}
	}
	if req.Name == "" {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, "name is required", 0)
		return
	}
	rt.ingestForward(w, r, req.Name, "/v1/ingest", body)
}

func (rt *Router) handleIngest(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		body, err := readBody(r)
		if err != nil {
			rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
			return
		}
		rt.ingestForward(w, r, name, "/v1/ingest/"+url.PathEscape(name)+suffix, body)
	}
}

func (rt *Router) ingestForward(w http.ResponseWriter, r *http.Request, name, pathQuery string, body []byte) {
	ring := rt.currentRing()
	primary := ring.Owner(name)
	if primary == "" {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable, "no shards configured", 1000)
		return
	}
	sr, err := rt.forward(r.Context(), primary, r.Method, pathQuery, r.Header.Get("Content-Type"), 0, tenantHeaders(r), body)
	if err != nil {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
			fmt.Sprintf("primary %s unreachable: %v", primary, err), 1000)
		return
	}
	relay(w, sr, primary)
}

// handleCheckpoint fans the checkpoint to every shard and sums the
// per-shard stats.
func (rt *Router) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	nodes := rt.currentRing().Nodes()
	var mu sync.Mutex
	total := serveapi.CheckpointResponse{}
	var firstErr *shardResp
	var errShard string
	var wg sync.WaitGroup
	start := time.Now()
	for _, shard := range nodes {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			sr, err := rt.forward(r.Context(), shard, http.MethodPost, "/v1/admin/checkpoint", "", 0, tenantHeaders(r), nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = &shardResp{status: http.StatusServiceUnavailable,
						body: []byte(err.Error()), header: http.Header{}}
					errShard = shard
				}
				return
			}
			if sr.status/100 != 2 {
				if firstErr == nil {
					firstErr = sr
					errShard = shard
				}
				return
			}
			var cp serveapi.CheckpointResponse
			if json.Unmarshal(sr.body, &cp) == nil {
				total.Graphs += cp.Graphs
				total.WALBytesBefore += cp.WALBytesBefore
				total.WALBytesAfter += cp.WALBytesAfter
			}
		}(shard)
	}
	wg.Wait()
	if firstErr != nil {
		if firstErr.header.Get("Content-Type") != "" {
			relay(w, firstErr, errShard)
			return
		}
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
			fmt.Sprintf("checkpoint on %s failed: %s", errShard, firstErr.body), 1000)
		return
	}
	total.ElapsedMS = time.Since(start).Milliseconds()
	rt.writeJSON(w, http.StatusOK, &total)
}
