package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"butterfly"
	"butterfly/client"
	"butterfly/internal/serve"
	"butterfly/serveapi"
)

// spawnShards starts n in-process shard daemons.
func spawnShards(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	shards := make([]*httptest.Server, n)
	for i := range shards {
		s := serve.New(serve.Config{Role: "shard"})
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
		shards[i] = ts
	}
	return shards
}

// newRouter starts a router over the given shard URLs with fast test
// timeouts.
func newRouter(t *testing.T, urls []string, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	cfg.Shards = urls
	cfg.Retries = 1
	cfg.RetryBackoff = time.Millisecond
	if cfg.PartialTimeout == 0 {
		cfg.PartialTimeout = 5 * time.Second
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

func urlsOf(shards []*httptest.Server) []string {
	out := make([]string, len(shards))
	for i, s := range shards {
		out[i] = s.URL
	}
	return out
}

// mustGen adapts a generator's (graph, error) return for inline use:
// mustGen(t)(butterfly.GenerateGnm(...)).
func mustGen(t *testing.T) func(*butterfly.Graph, error) *butterfly.Graph {
	return func(g *butterfly.Graph, err error) *butterfly.Graph {
		t.Helper()
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		return g
	}
}

// registerInline registers a graph through the router from an
// in-memory edge list, partitioned when p > 1.
func registerInline(t *testing.T, c *client.Client, name string, g *butterfly.Graph, p int) serveapi.GraphInfo {
	t.Helper()
	req := serveapi.RegisterRequest{Name: name, M: g.NumV1(), N: g.NumV2(), Edges: g.Edges()}
	if p > 1 {
		req.Partitions = p
	}
	info, err := c.Register(context.Background(), req)
	if err != nil {
		t.Fatalf("register %s (p=%d): %v", name, p, err)
	}
	return info
}

// TestScatterGatherDifferential is the correctness core of the
// cluster tier: for every generator shape and partitions ∈ {1, 2, 4},
// the router's answer must equal the single-node exact count.
func TestScatterGatherDifferential(t *testing.T) {
	shards := spawnShards(t, 2)
	_, rts := newRouter(t, urlsOf(shards), Config{})
	c := client.New(rts.URL)
	ctx := context.Background()

	shapes := []struct {
		name string
		g    *butterfly.Graph
	}{
		{"power-law", mustGen(t)(butterfly.GeneratePowerLaw(120, 90, 900, 2.1, 2.3, 7))},
		{"gnm", mustGen(t)(butterfly.GenerateGnm(80, 60, 600, 11))},
		{"complete", mustGen(t)(butterfly.GenerateComplete(9, 8))},
	}
	for _, shape := range shapes {
		exact := shape.g.Count()
		for _, p := range []int{1, 2, 4} {
			name := fmt.Sprintf("%s-p%d", shape.name, p)
			info := registerInline(t, c, name, shape.g, p)
			if p > 1 {
				if info.Partitions != p {
					t.Errorf("%s: register info partitions = %d, want %d", name, info.Partitions, p)
				}
				if info.Butterflies != exact {
					t.Errorf("%s: register info butterflies = %d, want %d", name, info.Butterflies, exact)
				}
			}
			cr, err := c.Count(ctx, name, serveapi.CountRequest{})
			if err != nil {
				t.Fatalf("%s: count: %v", name, err)
			}
			if cr.Butterflies != exact {
				t.Errorf("%s: router count = %d, single-node exact = %d", name, cr.Butterflies, exact)
			}
			if p > 1 && cr.Partitions != p {
				t.Errorf("%s: count partitions = %d, want %d", name, cr.Partitions, p)
			}
			// The estimate endpoint on a fully-live partitioned graph
			// is exact and not degraded.
			er, err := c.Estimate(ctx, name, serveapi.EstimateRequest{})
			if err != nil {
				t.Fatalf("%s: estimate: %v", name, err)
			}
			if p > 1 {
				if er.Degraded {
					t.Errorf("%s: estimate degraded with all partitions live", name)
				}
				if er.Estimate != float64(exact) {
					t.Errorf("%s: estimate = %v, want exact %d", name, er.Estimate, exact)
				}
			}
		}
	}
}

// TestKillShardDegrades asserts the failure contract: with one of two
// partitions unreachable, count answers 200 with the partition-
// sampling estimate — X-Degraded header, degraded:true, and exactly
// live × (P/L)².
func TestKillShardDegrades(t *testing.T) {
	shards := spawnShards(t, 2)
	rt, rts := newRouter(t, urlsOf(shards), Config{PartialTimeout: 2 * time.Second})
	c := client.New(rts.URL)

	g := mustGen(t)(butterfly.GenerateGnm(80, 60, 700, 3))
	registerInline(t, c, "kg", g, 2)

	homes := rt.partHomes(rt.currentRing(), "kg", 2)
	if homes[0] == homes[1] {
		t.Fatalf("expected 2 distinct homes, got %v", homes)
	}
	// Kill the shard hosting partition 1; partition 0 stays live.
	for _, ts := range shards {
		if ts.URL == homes[1] {
			ts.Close()
		}
	}
	// Expected estimate: butterflies whose both wedge centers are in
	// the surviving partition 0, scaled by (2/1)² = 4.
	b := butterfly.NewBuilder(g.NumV1(), g.NumV2())
	for _, e := range g.Edges() {
		if partOf(e[0], 2) == 0 {
			b.AddEdge(e[0], e[1])
		}
	}
	sub, err := b.Build()
	if err != nil {
		t.Fatalf("build partition 0: %v", err)
	}
	want := float64(sub.Count()) * 4

	resp, err := http.Post(rts.URL+"/v1/graphs/kg/count", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count with dead shard: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Degraded"); got != "partitions" {
		t.Errorf("X-Degraded = %q, want %q", got, "partitions")
	}
	var est serveapi.EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !est.Degraded {
		t.Error("degraded flag not set")
	}
	if est.Partitions != 2 || est.PartitionsLive != 1 {
		t.Errorf("partitions=%d live=%d, want 2/1", est.Partitions, est.PartitionsLive)
	}
	if est.Strategy != "partitions" {
		t.Errorf("strategy = %q, want partitions", est.Strategy)
	}
	if est.Estimate != want {
		t.Errorf("estimate = %v, want %v (live %d × 4)", est.Estimate, want, sub.Count())
	}
}

// TestReplicaFloor asserts read-your-writes: with a replica stuck one
// version behind, every routed read still observes the written
// version because the floor bounces the stale replica (503
// replica_behind) and the router falls through to the primary.
func TestReplicaFloor(t *testing.T) {
	shards := spawnShards(t, 2)
	rt, rts := newRouter(t, urlsOf(shards), Config{Replicas: 2})
	c := client.New(rts.URL)
	ctx := context.Background()

	g := mustGen(t)(butterfly.GenerateGnm(40, 30, 200, 5))
	registerInline(t, c, "rf", g, 1)

	// Mutate the primary directly, bypassing the router, so the
	// replica stays at v1 while the primary moves to v2.
	primary := rt.currentRing().Successors("rf", 2)[0]
	mreq, _ := json.Marshal(serveapi.MutateRequest{Inserts: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}})
	resp, err := http.Post(primary+"/v1/graphs/rf/mutate", "application/json", bytes.NewReader(mreq))
	if err != nil {
		t.Fatalf("direct mutate: %v", err)
	}
	var mr serveapi.MutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatalf("decode mutate: %v", err)
	}
	resp.Body.Close()
	if mr.Version != 2 {
		t.Fatalf("primary version = %d, want 2", mr.Version)
	}
	rt.ensureMeta("rf", 0).floor.Store(2)

	// Every read — wherever the rotation starts — must see v2.
	for i := 0; i < 6; i++ {
		cr, err := c.Count(ctx, "rf", serveapi.CountRequest{})
		if err != nil {
			t.Fatalf("count %d: %v", i, err)
		}
		if cr.Version != 2 {
			t.Fatalf("count %d: version %d served below floor 2", i, cr.Version)
		}
	}
}

// TestListMergesPartitions: the router's listing collapses partition
// graphs into one logical entry and hides the @@ marker names.
func TestListMergesPartitions(t *testing.T) {
	shards := spawnShards(t, 2)
	_, rts := newRouter(t, urlsOf(shards), Config{})
	c := client.New(rts.URL)

	solo := mustGen(t)(butterfly.GenerateGnm(30, 20, 150, 9))
	parts := mustGen(t)(butterfly.GenerateGnm(50, 40, 400, 13))
	registerInline(t, c, "solo", solo, 1)
	registerInline(t, c, "parts", parts, 2)

	list, err := c.Graphs(context.Background())
	if err != nil {
		t.Fatalf("graphs: %v", err)
	}
	byName := map[string]serveapi.GraphInfo{}
	for _, gi := range list {
		if strings.Contains(gi.Name, "@@") {
			t.Errorf("partition name %q leaked into the listing", gi.Name)
		}
		byName[gi.Name] = gi
	}
	if len(byName) != 2 {
		t.Fatalf("want 2 logical graphs, got %v", list)
	}
	pg := byName["parts"]
	if pg.Partitions != 2 {
		t.Errorf("parts partitions = %d, want 2", pg.Partitions)
	}
	if pg.Version != 2 {
		t.Errorf("parts version = %d, want 2 (sum of partition v1s)", pg.Version)
	}
	if pg.NumEdges != parts.NumEdges() {
		t.Errorf("parts edges = %d, want %d", pg.NumEdges, parts.NumEdges())
	}
	if byName["solo"].Partitions != 0 {
		t.Errorf("solo unexpectedly partitioned: %+v", byName["solo"])
	}
}

// TestPartitionedMutate: mutations split by the registration hash and
// the follow-up count is exact.
func TestPartitionedMutate(t *testing.T) {
	shards := spawnShards(t, 2)
	_, rts := newRouter(t, urlsOf(shards), Config{})
	c := client.New(rts.URL)
	ctx := context.Background()

	g := mustGen(t)(butterfly.GenerateGnm(60, 50, 400, 21))
	registerInline(t, c, "mg", g, 2)

	// Apply the same mutation to a local copy for the expected count.
	inserts := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 3}}
	deletes := g.Edges()[:5]
	local := butterfly.NewDynamicCounterFromGraph(g)
	for _, e := range inserts {
		local.InsertEdge(e[0], e[1])
	}
	for _, e := range deletes {
		local.DeleteEdge(e[0], e[1])
	}

	mr, err := c.Mutate(ctx, "mg", serveapi.MutateRequest{Inserts: inserts, Deletes: deletes})
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if mr.Count != local.Count() {
		t.Errorf("mutate count = %d, want %d", mr.Count, local.Count())
	}
	cr, err := c.Count(ctx, "mg", serveapi.CountRequest{})
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if cr.Butterflies != local.Count() {
		t.Errorf("post-mutate count = %d, want %d", cr.Butterflies, local.Count())
	}
}

// TestUnsupportedOnPartitioned: per-vertex endpoints reject
// partitioned graphs with invalid_argument instead of answering
// something silently wrong.
func TestUnsupportedOnPartitioned(t *testing.T) {
	shards := spawnShards(t, 2)
	_, rts := newRouter(t, urlsOf(shards), Config{})
	c := client.New(rts.URL)
	ctx := context.Background()

	g := mustGen(t)(butterfly.GenerateGnm(30, 20, 150, 2))
	registerInline(t, c, "pp", g, 2)

	_, err := c.VertexCounts(ctx, "pp", serveapi.VertexCountsRequest{})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Code != serveapi.CodeInvalidArgument {
		t.Errorf("vertex-counts on partitioned graph: got %v, want 400 invalid_argument", err)
	}

	// Reserved marker in user names.
	_, err = c.Register(ctx, serveapi.RegisterRequest{Name: "evil@@p0of2", M: 2, N: 2, Edges: [][2]int{{0, 0}}})
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Errorf("register with @@ name: got %v, want 400", err)
	}
}

// TestRebalance moves graphs through join and leave: counts are
// preserved across both, and a departed shard holds nothing.
func TestRebalance(t *testing.T) {
	shards := spawnShards(t, 3)
	urls := urlsOf(shards)
	rt, rts := newRouter(t, urls[:2], Config{})
	c := client.New(rts.URL)
	ctx := context.Background()

	solo := mustGen(t)(butterfly.GenerateGnm(40, 30, 250, 17))
	parts := mustGen(t)(butterfly.GeneratePowerLaw(80, 60, 500, 2.1, 2.3, 19))
	registerInline(t, c, "solo", solo, 1)
	registerInline(t, c, "parts", parts, 2)
	soloExact, partsExact := solo.Count(), parts.Count()

	rebalance := func(newShards []string) serveapi.RebalanceResponse {
		t.Helper()
		body, _ := json.Marshal(serveapi.RebalanceRequest{Shards: newShards})
		resp, err := http.Post(rts.URL+"/admin/rebalance", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("rebalance: %v", err)
		}
		defer resp.Body.Close()
		var rr serveapi.RebalanceResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatalf("decode rebalance: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rebalance status %d: %+v", resp.StatusCode, rr)
		}
		if len(rr.Errors) > 0 {
			t.Fatalf("rebalance errors: %v", rr.Errors)
		}
		return rr
	}
	checkCounts := func(stage string) {
		t.Helper()
		cr, err := c.Count(ctx, "solo", serveapi.CountRequest{})
		if err != nil || cr.Butterflies != soloExact {
			t.Fatalf("%s: solo count = %v/%v, want %d", stage, cr.Butterflies, err, soloExact)
		}
		cr, err = c.Count(ctx, "parts", serveapi.CountRequest{})
		if err != nil || cr.Butterflies != partsExact {
			t.Fatalf("%s: parts count = %v/%v, want %d", stage, cr.Butterflies, err, partsExact)
		}
	}

	checkCounts("before")
	rr := rebalance(urls) // join shard 3
	if rr.Shards != 3 {
		t.Fatalf("post-join shard count = %d, want 3", rr.Shards)
	}
	checkCounts("after join")
	if rt.currentRing().Len() != 3 {
		t.Fatalf("ring not swapped: %d nodes", rt.currentRing().Len())
	}

	rr = rebalance(urls[1:]) // shard 1 leaves
	if rr.Shards != 2 {
		t.Fatalf("post-leave shard count = %d, want 2", rr.Shards)
	}
	checkCounts("after leave")

	// The departed shard must hold nothing.
	resp, err := http.Get(urls[0] + "/v1/graphs")
	if err != nil {
		t.Fatalf("list departed shard: %v", err)
	}
	defer resp.Body.Close()
	var gl serveapi.GraphList
	if err := json.NewDecoder(resp.Body).Decode(&gl); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(gl.Graphs) != 0 {
		t.Errorf("departed shard still holds %v", gl.Graphs)
	}
}

// TestRouterRefresh: a freshly restarted router (no metadata)
// rediscovers partitioned graphs from the shards and serves exact
// counts for them.
func TestRouterRefresh(t *testing.T) {
	shards := spawnShards(t, 2)
	urls := urlsOf(shards)
	_, rts := newRouter(t, urls, Config{})
	c := client.New(rts.URL)
	ctx := context.Background()

	g := mustGen(t)(butterfly.GenerateGnm(50, 40, 350, 23))
	registerInline(t, c, "rg", g, 2)

	// "Restart": a second router over the same shards, no memory.
	rt2, rts2 := newRouter(t, urls, Config{})
	if err := rt2.Refresh(ctx); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	c2 := client.New(rts2.URL)
	cr, err := c2.Count(ctx, "rg", serveapi.CountRequest{})
	if err != nil {
		t.Fatalf("count after refresh: %v", err)
	}
	if cr.Butterflies != g.Count() {
		t.Errorf("count after refresh = %d, want %d", cr.Butterflies, g.Count())
	}
	if cr.Partitions != 2 {
		t.Errorf("partitions after refresh = %d, want 2", cr.Partitions)
	}
}

// TestTenantRoundTripThroughRouter: the QoS identity a client attaches
// survives router → shard (the shard charges and schedules under it)
// and the shard's resolved echo relays back to the client.
func TestTenantRoundTripThroughRouter(t *testing.T) {
	tcfg := serve.TenantsConfig{Tenants: map[string]serve.TenantSpec{"acme": {Weight: 2}}}
	shards := make([]*httptest.Server, 2)
	for i := range shards {
		s := serve.New(serve.Config{Role: "shard", Tenants: tcfg})
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
		shards[i] = ts
	}
	_, rts := newRouter(t, urlsOf(shards), Config{})
	c := client.New(rts.URL)
	g := mustGen(t)(butterfly.GenerateGnm(40, 30, 200, 5))
	registerInline(t, c, "qos", g, 1)

	body := bytes.NewReader([]byte(`{}`))
	req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/graphs/qos/count", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serveapi.TenantHeader, "acme")
	req.Header.Set(serveapi.PriorityHeader, "batch")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count through router: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(serveapi.TenantHeader); got != "acme" {
		t.Errorf("echoed tenant = %q, want acme (lost across the router hop)", got)
	}
	if got := resp.Header.Get(serveapi.PriorityHeader); got != "batch" {
		t.Errorf("echoed priority = %q, want batch", got)
	}
	if resp.Header.Get("X-Bf-Shard") == "" {
		t.Error("response not stamped with the serving shard")
	}

	// An unknown tenant collapses to default on the shard, and the
	// client sees the collapse through the router.
	req2, _ := http.NewRequest(http.MethodPost, rts.URL+"/v1/graphs/qos/count", bytes.NewReader([]byte(`{}`)))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(serveapi.TenantHeader, "mystery")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(serveapi.TenantHeader); got != "default" {
		t.Errorf("unknown tenant echoed %q, want default", got)
	}
}
