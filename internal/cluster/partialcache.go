package cluster

// Router-side partial caching: the version-pinned state that turns a
// partitioned count on an unchanged graph into a metadata check.
//
// Each partitioned graph's meta carries a partialCache holding (a)
// every partition's last wedge-partial map pinned to the version and
// epoch the shard stamped on it, and (b) the merged Σ C(β, 2) result
// of the last all-partitions-live reduce. Gathers send the pinned
// (version, epoch) as `?since=`/`?epoch=` so an unchanged partition
// answers with an empty delta frame and a mutated one with just its
// changed keys; the full map travels only on the first fetch or after
// the shard evicted its delta history.
//
// A generation counter orders cache state against mutations: anything
// that can change a partition's content (partitioned mutate, re-
// registration, rebalance, refresh) bumps the generation, and a merged
// result is only stored if the generation still matches the one read
// before the gather started — a gather racing a mutation can return a
// pre-mutation answer to its own callers (it started first) but can
// never pin it as current. The generation also keys in-flight
// coalescing, so requests arriving after a mutation never join a
// pre-mutation gather.
//
// The cache is valid precisely because partitioned graphs are only
// written through their owning router (the PR 8 deployment contract —
// partition names are reserved, and docs/CLUSTER.md spells out the
// single-writer rule). A second router pointed at the same shards
// keeps itself correct the same way this one does after restart: its
// first gather full-fetches and re-pins.

import (
	"sync"

	"butterfly"
	"butterfly/internal/flight"
)

// cachedPartial is one partition's pinned partial map. Immutable once
// stored — apply-delta builds a fresh slice.
type cachedPartial struct {
	version  uint64
	epoch    uint64 // shard partial-log activation token
	partials []butterfly.WedgePartial
}

// mergedCount is the cached reduction over all partitions.
type mergedCount struct {
	count      int64
	sumVersion uint64
}

// partialCache is the per-graph pinned state. The zero value is ready
// to use.
type partialCache struct {
	mu     sync.Mutex
	gen    uint64
	parts  []*cachedPartial
	merged *mergedCount
}

// generation returns the current invalidation generation.
func (pc *partialCache) generation() uint64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.gen
}

// snapshot returns partition i's pinned partial, or nil.
func (pc *partialCache) snapshot(i int) *cachedPartial {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if i < 0 || i >= len(pc.parts) {
		return nil
	}
	return pc.parts[i]
}

// store pins partition i's partial. Pins never move backwards within
// an epoch: versions only grow on a shard, so an older gather that
// finishes late cannot clobber a newer pin.
func (pc *partialCache) store(i int, cp *cachedPartial) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if i < 0 {
		return
	}
	for len(pc.parts) <= i {
		pc.parts = append(pc.parts, nil)
	}
	old := pc.parts[i]
	if old != nil && old.epoch == cp.epoch && old.version > cp.version {
		return
	}
	pc.parts[i] = cp
}

// mergedSnapshot returns the generation to gather under and, when the
// merged reduction is still pinned with all p partitions present, that
// result.
func (pc *partialCache) mergedSnapshot(p int) (gen uint64, mc mergedCount, ok bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.merged == nil || len(pc.parts) < p {
		return pc.gen, mergedCount{}, false
	}
	for i := 0; i < p; i++ {
		if pc.parts[i] == nil {
			return pc.gen, mergedCount{}, false
		}
	}
	return pc.gen, *pc.merged, true
}

// setMerged pins the merged reduction, unless the cache was
// invalidated after gen was read (the gather raced a mutation).
func (pc *partialCache) setMerged(gen uint64, mc mergedCount) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.gen != gen {
		return
	}
	pc.merged = &mc
}

// invalidate drops the merged reduction and starts a new generation.
// Per-partition pins survive — they are version-addressed, and the
// next gather revalidates them by delta.
func (pc *partialCache) invalidate() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.gen++
	pc.merged = nil
}

// clear drops everything (re-registration, membership change).
func (pc *partialCache) clear() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.gen++
	pc.merged = nil
	pc.parts = nil
}

// --- in-flight coalescing ---

// gatherOutcome is the shared result of one scatter-gather (or merged-
// cache hit): everything any waiter needs to render a count or an
// estimate response.
type gatherOutcome struct {
	count      int64
	sumVersion uint64
	live, p    int
	firstErr   error // first partition error when live < p
	fromCache  bool  // answered from the merged pin, no shard traffic
}

// flightGroup deduplicates concurrent gathers per key — a thin alias
// over the shared internal/flight singleflight (extracted from this
// file in PR 10; the serve layer coalesces shard-local kernel
// executions through the same primitive). Keys embed the partial-
// cache generation, so a flight can only be joined by requests that
// observed the same mutation history.
type flightGroup struct {
	g flight.Group[gatherOutcome]
}

// do returns fn's outcome for key, joining an identical in-progress
// call instead of starting a second one. joined reports whether this
// caller shared another flight's work.
func (g *flightGroup) do(key string, fn func() gatherOutcome) (out gatherOutcome, joined bool) {
	return g.g.Do(key, fn)
}
