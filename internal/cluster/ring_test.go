package cluster

import (
	"fmt"
	"testing"
)

func TestRingOrderIndependent(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 64)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a"}, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("graph-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs between equivalent rings: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 32)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("g%d", i)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("key %q: want 3 successors, got %v", key, succ)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: duplicate successor %q in %v", key, s, succ)
			}
			seen[s] = true
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("key %q: Successors[0]=%q != Owner=%q", key, succ[0], r.Owner(key))
		}
	}
	// Asking for more than the membership clamps.
	if got := r.Successors("x", 10); len(got) != 3 {
		t.Fatalf("want clamp to 3 nodes, got %v", got)
	}
	empty := NewRing(nil, 16)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
}

func TestRingBalanceAndStability(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(nodes, DefaultVNodes)
	const keys = 4000
	load := map[string]int{}
	owner := map[string]string{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		o := r.Owner(k)
		load[o]++
		owner[k] = o
	}
	for _, n := range nodes {
		frac := float64(load[n]) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys — outside [10%%, 45%%]", n, 100*frac)
		}
	}
	// Adding one node should move roughly 1/5 of keys, not reshuffle
	// everything — the property that makes rebalances cheap.
	grown := NewRing(append(nodes, "http://e"), DefaultVNodes)
	moved := 0
	for k, o := range owner {
		if grown.Owner(k) != o {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 0.40 {
		t.Errorf("adding 1 of 5 nodes moved %.1f%% of keys — consistent hashing should move ~20%%", 100*frac)
	}
	if frac == 0 {
		t.Error("adding a node moved no keys — new node gets no load")
	}
}

func TestPartNames(t *testing.T) {
	for _, tc := range []struct{ i, p int }{{0, 2}, {1, 2}, {3, 4}, {7, 8}} {
		n := partName("web-graph", tc.i, tc.p)
		g, i, p, ok := splitPartName(n)
		if !ok || g != "web-graph" || i != tc.i || p != tc.p {
			t.Fatalf("round trip %q: got (%q,%d,%d,%v)", n, g, i, p, ok)
		}
	}
	for _, bad := range []string{"plain", "a@@p", "a@@p1of1", "a@@p2of2", "a@@pxofy", "a@@p-1of2"} {
		if _, _, _, ok := splitPartName(bad); ok {
			t.Errorf("splitPartName(%q) unexpectedly ok", bad)
		}
	}
}

func TestPartOfRange(t *testing.T) {
	for p := 1; p <= 8; p++ {
		counts := make([]int, p)
		for u := 0; u < 10000; u++ {
			i := partOf(u, p)
			if i < 0 || i >= p {
				t.Fatalf("partOf(%d,%d)=%d out of range", u, p, i)
			}
			counts[i]++
		}
		for i, c := range counts {
			if p > 1 && (c < 10000/p/2 || c > 10000*2/p) {
				t.Errorf("p=%d: partition %d got %d of 10000 — badly skewed", p, i, c)
			}
		}
	}
}
