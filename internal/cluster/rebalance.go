package cluster

// Shard membership changes. Refresh rebuilds the router's routing
// metadata from what the shards actually hold; handleRebalance
// applies a new shard set by re-placing every shard-resident graph
// under the new ring, shipping each moved graph's newest published
// snapshot (export → adopt at the carried version → delete) so a
// join/leave needs no recount and no quiesce.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"butterfly/serveapi"
)

// inventory maps shard-resident graph name → the shards holding it.
// Unreachable shards are reported in errs and simply contribute no
// holdings (their graphs stay where they are).
func (rt *Router) inventory(ctx context.Context, shards []string) (map[string][]string, []string) {
	type out struct {
		shard string
		names []string
		err   error
	}
	outs := make([]out, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			sr, err := rt.forward(ctx, shard, http.MethodGet, "/v1/graphs", "", 0, nil, nil)
			if err == nil && sr.status != http.StatusOK {
				err = fmt.Errorf("status %d", sr.status)
			}
			var gl serveapi.GraphList
			if err == nil {
				err = json.Unmarshal(sr.body, &gl)
			}
			o := out{shard: shard, err: err}
			for _, gi := range gl.Graphs {
				if gi.State == "" { // loading ingests are not movable
					o.names = append(o.names, gi.Name)
				}
			}
			outs[i] = o
		}(i, shard)
	}
	wg.Wait()
	held := map[string][]string{}
	var errs []string
	for _, o := range outs {
		if o.err != nil {
			errs = append(errs, fmt.Sprintf("list %s: %v", o.shard, o.err))
			continue
		}
		for _, n := range o.names {
			held[n] = append(held[n], o.shard)
		}
	}
	return held, errs
}

// Refresh rebuilds the router's graph metadata from the shards: every
// partition marker found on any shard re-registers its logical graph
// as partitioned, every other graph as plain. Call it after router
// restart (the routing state is derivable, not durable) — bfserved
// does on startup.
func (rt *Router) Refresh(ctx context.Context) error {
	ring := rt.currentRing()
	held, errs := rt.inventory(ctx, ring.Nodes())
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for name := range held {
		logical, _, p, ok := splitPartName(name)
		if !ok {
			logical, p = name, 0
		}
		m := rt.graphs[logical]
		if m == nil {
			m = &graphMeta{}
			rt.graphs[logical] = m
		}
		if p >= 2 {
			m.partitions = p
		}
	}
	// Membership (or shard content) may have changed under the pinned
	// partials — rebalance moves partitions, adopts mint new partial-
	// log epochs. Drop every pin; the next gather re-bases.
	for _, m := range rt.graphs {
		m.pc.clear()
	}
	if len(errs) > 0 {
		return fmt.Errorf("refresh incomplete: %v", errs)
	}
	return nil
}

// desiredPlacement computes where a shard-resident graph should live
// under a ring: partition graphs at their partition home, plain
// graphs at their first Replicas successors.
func (rt *Router) desiredPlacement(ring *Ring, name string) []string {
	if logical, i, p, ok := splitPartName(name); ok {
		homes := rt.partHomes(ring, logical, p)
		if homes == nil {
			return nil
		}
		return []string{homes[i]}
	}
	return ring.Successors(name, rt.cfg.Replicas)
}

// moveGraph ships one shard-resident graph from src to dst at its
// current version: export the published snapshot, adopt it remotely
// (the destination recounts and WAL-logs it), report the move.
func (rt *Router) moveGraph(ctx context.Context, name, src, dst string) (serveapi.MovedGraph, error) {
	mv := serveapi.MovedGraph{Graph: name, From: src, To: dst}
	sr, err := rt.forward(ctx, src, http.MethodGet, "/v1/internal/export/"+url.PathEscape(name), "", 0, nil, nil)
	if err == nil && sr.status != http.StatusOK {
		err = fmt.Errorf("export: status %d: %s", sr.status, truncate(sr.body, 200))
	}
	if err != nil {
		return mv, err
	}
	var exp serveapi.ExportResponse
	if err := json.Unmarshal(sr.body, &exp); err != nil {
		return mv, fmt.Errorf("export: %v", err)
	}
	adopt := serveapi.AdoptRequest{
		Name: exp.Name, M: exp.M, N: exp.N,
		Version: exp.Version, Count: exp.Count, Edges: exp.Edges,
		Replace: true,
	}
	body, _ := json.Marshal(&adopt)
	sr, err = rt.forward(ctx, dst, http.MethodPost, "/v1/internal/adopt", "application/json", 0, nil, body)
	if err == nil && sr.status/100 != 2 {
		err = fmt.Errorf("adopt: status %d: %s", sr.status, truncate(sr.body, 200))
	}
	if err != nil {
		return mv, err
	}
	mv.Version = exp.Version
	mv.Edges = int64(len(exp.Edges))
	return mv, nil
}

// handleRebalance applies a membership change: swap in the shard set
// from the request (or keep the current one), re-place every graph,
// copy what is missing from a current holder, then delete copies that
// no longer belong. Copy-before-delete ordering means a failure
// mid-rebalance leaves extra copies, never missing ones; re-running
// the rebalance converges.
func (rt *Router) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var req serveapi.RebalanceRequest
	body, err := readBody(r)
	if err == nil && len(body) > 0 {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
		return
	}
	start := time.Now()
	oldRing := rt.currentRing()
	newShards := req.Shards
	if len(newShards) == 0 {
		newShards = oldRing.Nodes()
	}
	newRing := NewRing(newShards, rt.cfg.VNodes)
	if newRing.Len() == 0 {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, "shard set must not be empty", 0)
		return
	}

	// Inventory across the union of old and new membership: a leaving
	// shard still holds graphs that must ship out.
	union := map[string]bool{}
	for _, s := range oldRing.Nodes() {
		union[s] = true
	}
	for _, s := range newRing.Nodes() {
		union[s] = true
	}
	all := make([]string, 0, len(union))
	for s := range union {
		all = append(all, s)
	}
	sort.Strings(all)
	held, errs := rt.inventory(r.Context(), all)

	resp := serveapi.RebalanceResponse{Shards: newRing.Len(), Moved: []serveapi.MovedGraph{}, Errors: errs}
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		holders := held[name]
		want := rt.desiredPlacement(newRing, name)
		if want == nil {
			continue
		}
		isHolder := func(s string) bool {
			for _, h := range holders {
				if h == s {
					return true
				}
			}
			return false
		}
		wanted := func(s string) bool {
			for _, h := range want {
				if h == s {
					return true
				}
			}
			return false
		}
		copiedAll := true
		for _, dst := range want {
			if isHolder(dst) {
				continue
			}
			mv, err := rt.moveGraph(r.Context(), name, holders[0], dst)
			if err != nil {
				resp.Errors = append(resp.Errors, fmt.Sprintf("%s → %s: %v", name, dst, err))
				copiedAll = false
				continue
			}
			rt.rebalMoves.With().Inc()
			resp.Moved = append(resp.Moved, mv)
		}
		if !copiedAll {
			continue // keep old copies until every new home has one
		}
		for _, src := range holders {
			if wanted(src) {
				continue
			}
			sr, err := rt.forward(r.Context(), src, http.MethodDelete, "/v1/graphs/"+url.PathEscape(name), "", 0, nil, nil)
			if err == nil && sr.status/100 != 2 && sr.status != http.StatusNotFound {
				err = fmt.Errorf("status %d", sr.status)
			}
			if err != nil {
				resp.Errors = append(resp.Errors, fmt.Sprintf("delete %s on %s: %v", name, src, err))
			}
		}
	}

	rt.mu.Lock()
	rt.ring = newRing
	rt.mu.Unlock()
	if err := rt.Refresh(r.Context()); err != nil {
		resp.Errors = append(resp.Errors, err.Error())
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	rt.writeJSON(w, http.StatusOK, &resp)
}
