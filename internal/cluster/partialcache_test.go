package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"butterfly"
	"butterfly/client"
	"butterfly/serveapi"
)

// countRaw posts a count through the router and returns the response
// headers along with the decoded body, for X-Cache assertions the
// typed client hides.
func countRaw(t *testing.T, base, name string) (serveapi.CountResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/v1/graphs/"+name+"/count", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	defer resp.Body.Close()
	var cr serveapi.CountResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("decode count: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count status %d", resp.StatusCode)
	}
	return cr, resp.Header
}

// TestDeltaSyncDifferential is the PR's correctness core: interleaved
// mutate and count rounds against partitioned graphs must stay byte-
// identical to a single-node dynamic counter replaying the same
// batches, with the router syncing by delta frames in between.
func TestDeltaSyncDifferential(t *testing.T) {
	shards := spawnShards(t, 2)
	rt, rts := newRouter(t, urlsOf(shards), Config{})
	c := client.New(rts.URL)
	ctx := context.Background()

	for _, p := range []int{1, 2, 4} {
		name := fmt.Sprintf("dsd-p%d", p)
		g := mustGen(t)(butterfly.GenerateGnm(60, 50, 450, int64(100+p)))
		registerInline(t, c, name, g, p)
		local := butterfly.NewDynamicCounterFromGraph(g)
		rng := rand.New(rand.NewSource(int64(p)))

		for round := 0; round < 5; round++ {
			// Count first so the router has pinned partials to sync.
			cr, err := c.Count(ctx, name, serveapi.CountRequest{})
			if err != nil {
				t.Fatalf("%s round %d: count: %v", name, round, err)
			}
			if cr.Butterflies != local.Count() {
				t.Fatalf("%s round %d: count %d, local replay %d", name, round, cr.Butterflies, local.Count())
			}

			var ins, del [][2]int
			for k := 0; k < 6; k++ {
				e := [2]int{rng.Intn(60), rng.Intn(50)}
				if rng.Intn(2) == 0 {
					ins = append(ins, e)
					local.InsertEdge(e[0], e[1])
				} else {
					del = append(del, e)
					local.DeleteEdge(e[0], e[1])
				}
			}
			mr, err := c.Mutate(ctx, name, serveapi.MutateRequest{Inserts: ins, Deletes: del})
			if err != nil {
				t.Fatalf("%s round %d: mutate: %v", name, round, err)
			}
			if p > 1 && mr.Count != local.Count() {
				t.Fatalf("%s round %d: mutate count %d, local replay %d", name, round, mr.Count, local.Count())
			}
		}
		// Final check plus the fast path: a repeat count on the now-
		// unchanged graph must come from the merged pin.
		cr, _ := countRaw(t, rts.URL, name)
		if cr.Butterflies != local.Count() {
			t.Fatalf("%s final: count %d, local replay %d", name, cr.Butterflies, local.Count())
		}
		if p > 1 {
			cr, hdr := countRaw(t, rts.URL, name)
			if cr.Butterflies != local.Count() {
				t.Fatalf("%s cached: count %d, local replay %d", name, cr.Butterflies, local.Count())
			}
			if hdr.Get("X-Cache") != "merged" {
				t.Errorf("%s: repeat count X-Cache = %q, want merged", name, hdr.Get("X-Cache"))
			}
		}
	}

	// The deltas actually flowed: after the first full fetch per
	// partition, re-gathers after mutations must have synced by delta.
	if v := rt.partialHits.With("delta").Value(); v == 0 {
		t.Error("no delta-frame syncs recorded across mutate/count rounds")
	}
	if v := rt.partialHits.With("merged").Value(); v == 0 {
		t.Error("no merged-pin hits recorded for repeat counts")
	}
}

// TestMergedPinSurvivesDeadShards: once a count has pinned the merged
// reduction, an unchanged graph keeps answering exactly even with
// every shard down — the count is a router-local metadata check.
func TestMergedPinSurvivesDeadShards(t *testing.T) {
	shards := spawnShards(t, 2)
	_, rts := newRouter(t, urlsOf(shards), Config{PartialTimeout: 2 * time.Second})
	c := client.New(rts.URL)
	ctx := context.Background()

	g := mustGen(t)(butterfly.GenerateGnm(70, 50, 500, 31))
	registerInline(t, c, "pin", g, 2)
	exact := g.Count()

	if cr, err := c.Count(ctx, "pin", serveapi.CountRequest{}); err != nil || cr.Butterflies != exact {
		t.Fatalf("priming count = %v/%v, want %d", cr, err, exact)
	}
	for _, ts := range shards {
		ts.Close()
	}
	cr, hdr := countRaw(t, rts.URL, "pin")
	if cr.Butterflies != exact {
		t.Fatalf("count with all shards dead = %d, want %d", cr.Butterflies, exact)
	}
	if hdr.Get("X-Cache") != "merged" {
		t.Errorf("X-Cache = %q, want merged", hdr.Get("X-Cache"))
	}
	// The estimate endpoint rides the same pin.
	er, err := c.Estimate(ctx, "pin", serveapi.EstimateRequest{})
	if err != nil || er.Degraded || er.Estimate != float64(exact) {
		t.Fatalf("estimate with dead shards = %+v/%v, want exact %d", er, err, exact)
	}
}

// TestMutateInvalidatesMergedPin: a mutation through the router must
// drop the pinned reduction so no later count serves the stale answer.
func TestMutateInvalidatesMergedPin(t *testing.T) {
	shards := spawnShards(t, 2)
	_, rts := newRouter(t, urlsOf(shards), Config{})
	c := client.New(rts.URL)
	ctx := context.Background()

	g := mustGen(t)(butterfly.GenerateComplete(6, 6))
	registerInline(t, c, "inv", g, 2)

	before, _ := c.Count(ctx, "inv", serveapi.CountRequest{})
	local := butterfly.NewDynamicCounterFromGraph(g)
	local.DeleteEdge(0, 0)
	if _, err := c.Mutate(ctx, "inv", serveapi.MutateRequest{Deletes: [][2]int{{0, 0}}}); err != nil {
		t.Fatal(err)
	}
	after, err := c.Count(ctx, "inv", serveapi.CountRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Butterflies == before.Butterflies || after.Butterflies != local.Count() {
		t.Fatalf("post-mutate count = %d, want %d (stale pin served?)", after.Butterflies, local.Count())
	}
}

// TestFlightGroupCoalesces: concurrent do() calls with the same key
// share one execution; a different key runs separately.
func TestFlightGroupCoalesces(t *testing.T) {
	var fg flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	var startOnce sync.Once
	var calls, joins, entered atomic.Int32

	const waiters = 8
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		first := i == 0
		go func(first bool) {
			defer wg.Done()
			if !first {
				<-started // ensure the leader's fn is already running
			}
			entered.Add(1)
			out, joined := fg.do("k", func() gatherOutcome {
				startOnce.Do(func() { close(started) })
				<-release
				calls.Add(1)
				return gatherOutcome{count: 42, live: 2, p: 2}
			})
			if out.count != 42 {
				t.Errorf("outcome count = %d, want 42", out.count)
			}
			if joined {
				joins.Add(1)
			}
		}(first)
	}
	<-started
	// Hold the leader until every waiter has reached do(); the brief
	// sleep covers the gap between the entered bump and the join.
	for entered.Load() < waiters {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", calls.Load())
	}
	if joins.Load() != waiters-1 {
		t.Errorf("%d joins, want %d", joins.Load(), waiters-1)
	}

	// After the flight lands, the key is free again: a new call runs.
	out, joined := fg.do("k", func() gatherOutcome { return gatherOutcome{count: 7} })
	if joined || out.count != 7 {
		t.Errorf("post-flight do = %+v joined=%v, want fresh run of 7", out, joined)
	}
}

// TestFlightGroupDelegatesToSharedFlight pins the PR 10 extraction:
// flightGroup is a thin wrapper over internal/flight, so a leader
// running under do() is visible as an in-flight key on the embedded
// group, and its completion frees the key. Combined with
// TestFlightGroupCoalesces (which exercises the full leader/joiner
// protocol through the same wrapper), this proves the extraction
// left router-side coalescing behavior unchanged.
func TestFlightGroupDelegatesToSharedFlight(t *testing.T) {
	var fg flightGroup
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		out, joined := fg.do("k", func() gatherOutcome {
			close(entered)
			<-release
			return gatherOutcome{count: 9}
		})
		if joined || out.count != 9 {
			t.Errorf("leader do = %+v joined=%v", out, joined)
		}
	}()
	<-entered
	if got := fg.g.InFlight(); got != 1 {
		t.Errorf("InFlight during leader = %d, want 1", got)
	}
	close(release)
	<-done
	if got := fg.g.InFlight(); got != 0 {
		t.Errorf("InFlight after completion = %d, want 0", got)
	}
}

// TestRetryDelayBounds: the jittered backoff stays within
// [base/2, 3·base/2) of the linear schedule, and grows with attempts.
func TestRetryDelayBounds(t *testing.T) {
	rt, err := New(Config{Shards: []string{"http://localhost:1"}, RetryBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		base := time.Duration(attempt) * 20 * time.Millisecond
		for i := 0; i < 200; i++ {
			d := rt.retryDelay(attempt)
			if d < base/2 || d >= base/2+base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, base/2, base/2+base)
			}
		}
	}
}
