package sparse

import "sort"

// MxMSorted computes A·B over the semiring s with the
// expand–sort–compress (ESC) strategy: each output row's contributions
// are gathered into a scratch list, sorted by column, and reduced in
// one pass. Compared with the Gustavson workspace of MxM, ESC carries
// no O(cols) dense accumulator — its working set is the row's actual
// contribution count — which wins when output columns are huge and
// rows are tiny, and loses when rows collide heavily (the sort pays
// per duplicate). Kept as the ablation partner of MxM; results are
// identical (tested).
func MxMSorted(a, b *CSR, s Semiring) *CSR {
	if a.C != b.R {
		panic("sparse: MxMSorted shape mismatch " + dims(a.R, a.C) + " · " + dims(b.R, b.C))
	}
	out := &CSR{R: a.R, C: b.C, Ptr: make([]int64, a.R+1)}
	out.Col = make([]int32, 0, a.NNZ())
	out.Val = make([]int64, 0, a.NNZ())

	type contrib struct {
		col int32
		val int64
	}
	scratch := make([]contrib, 0, 256)

	for i := 0; i < a.R; i++ {
		scratch = scratch[:0]
		arow := a.Row(i)
		avals := a.RowVals(i)
		for k, kc := range arow {
			av := int64(1)
			if avals != nil {
				av = avals[k]
			}
			brow := b.Row(int(kc))
			bvals := b.RowVals(int(kc))
			for t, j := range brow {
				bv := int64(1)
				if bvals != nil {
					bv = bvals[t]
				}
				scratch = append(scratch, contrib{col: j, val: s.Mul(av, bv)})
			}
		}
		sort.Slice(scratch, func(x, y int) bool { return scratch[x].col < scratch[y].col })
		// Compress equal columns under the additive monoid.
		for k := 0; k < len(scratch); {
			col := scratch[k].col
			acc := s.Add.Op(s.Add.Identity, scratch[k].val)
			k++
			for k < len(scratch) && scratch[k].col == col {
				acc = s.Add.Op(acc, scratch[k].val)
				k++
			}
			out.Col = append(out.Col, col)
			out.Val = append(out.Val, acc)
		}
		out.Ptr[i+1] = int64(len(out.Col))
	}
	return out
}
