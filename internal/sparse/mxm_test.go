package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/dense"
)

func TestMxMKnown(t *testing.T) {
	a := FromDense(dense.NewFromRows([][]int64{{1, 2}, {0, 3}}), false)
	b := FromDense(dense.NewFromRows([][]int64{{4, 0}, {5, 6}}), false)
	p := MxM(a, b, PlusTimes)
	want := dense.NewFromRows([][]int64{{14, 12}, {15, 18}})
	if !ToDense(p).Equal(want) {
		t.Fatalf("MxM = %v, want %v", ToDense(p), want)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMxMShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MxM shape mismatch did not panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	MxM(randCSR(rng, 2, 3, 0.5), randCSR(rng, 2, 3, 0.5), PlusTimes)
}

func TestQuickMxMMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		da := randDense(rng, m, k, 0.5, 4)
		db := randDense(rng, k, n, 0.5, 4)
		p := MxM(FromDense(da, false), FromDense(db, false), PlusTimes)
		if p.Validate() != nil {
			return false
		}
		return ToDense(p).Equal(da.Mul(db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMxMPatternMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		da := randDense(rng, m, k, 0.5, 1)
		db := randDense(rng, k, n, 0.5, 1)
		p := MxM(FromDense(da, true), FromDense(db, true), PlusTimes)
		return ToDense(p).Equal(da.Mul(db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMxMWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWorkspace(1)
	for trial := 0; trial < 30; trial++ {
		m, k, n := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		da := randDense(rng, m, k, 0.5, 3)
		db := randDense(rng, k, n, 0.5, 3)
		p := MxMWith(w, FromDense(da, false), FromDense(db, false), PlusTimes)
		if !ToDense(p).Equal(da.Mul(db)) {
			t.Fatalf("trial %d: workspace-reused product wrong", trial)
		}
	}
}

func TestMxMOrAndSemiring(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	da := randDense(rng, 6, 5, 0.5, 1)
	db := randDense(rng, 5, 7, 0.5, 1)
	p := MxM(FromDense(da, true), FromDense(db, true), OrAnd)
	prod := da.Mul(db)
	for i := 0; i < 6; i++ {
		for j := 0; j < 7; j++ {
			want := int64(0)
			if prod.At(i, j) > 0 {
				want = 1
			}
			if p.At(i, j) != want {
				t.Fatalf("OrAnd(%d,%d) = %d, want %d", i, j, p.At(i, j), want)
			}
		}
	}
}

func TestMxMPlusPairEqualsPlusTimesOnPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCSR(rng, 8, 6, 0.5)
	b := randCSR(rng, 6, 9, 0.5)
	if !MxM(a, b, PlusPair).Equal(MxM(a, b, PlusTimes)) {
		t.Fatal("PlusPair != PlusTimes on 0/1 matrices")
	}
}

func TestQuickMxMMaskedMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		da := randDense(rng, m, k, 0.5, 3)
		db := randDense(rng, k, n, 0.5, 3)
		dm := randDense(rng, m, n, 0.5, 1)
		got := MxMMasked(FromDense(da, false), FromDense(db, false), FromDense(dm, true), PlusTimes)
		if got.Validate() != nil {
			return false
		}
		// Dense reference: (A·B) ∘ mask-pattern, then compare patterns of
		// nonzero mask entries; masked SpGEMM keeps an entry whenever the
		// product has a stored (≠ guaranteed nonzero) value there, so
		// compare values position-wise where mask is set.
		prod := da.Mul(db)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if dm.At(i, j) == 0 {
					if got.At(i, j) != 0 {
						return false
					}
					continue
				}
				if got.At(i, j) != prod.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMxMMaskedShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCSR(rng, 3, 4, 0.5)
	b := randCSR(rng, 4, 5, 0.5)
	badMask := randCSR(rng, 3, 4, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("MxMMasked bad mask did not panic")
		}
	}()
	MxMMasked(a, b, badMask, PlusTimes)
}

func TestQuickMxVMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(9)+1, rng.Intn(9)+1
		da := randDense(rng, m, n, 0.5, 4)
		x := make([]int64, n)
		for i := range x {
			x[i] = rng.Int63n(7) - 3
		}
		got := MxV(FromDense(da, false), x)
		for i := 0; i < m; i++ {
			var want int64
			for j := 0; j < n; j++ {
				want += da.At(i, j) * x[j]
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVxMEqualsTransposeMxV(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(9)+1, rng.Intn(9)+1
		a := randCSRVals(rng, m, n, 0.5)
		x := make([]int64, m)
		for i := range x {
			x[i] = rng.Int63n(5)
		}
		got := VxM(x, a)
		want := MxV(Transpose(a), x)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestMxVLengthPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randCSR(rng, 3, 4, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("MxV length mismatch did not panic")
		}
	}()
	MxV(a, make([]int64, 3))
}

func TestQuickDotRowsMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(8)+2, rng.Intn(8)+1
		da := randDense(rng, m, n, 0.5, 3)
		a := FromDense(da, false)
		i, j := rng.Intn(m), rng.Intn(m)
		var want int64
		for c := 0; c < n; c++ {
			want += da.At(i, c) * da.At(j, c)
		}
		return DotRows(a, i, a, j) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// AAᵀ over PlusTimes gives the wedge-count matrix B of the paper.
func TestQuickAATIsWedgeMatrix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		da := randDense(rng, rng.Intn(7)+1, rng.Intn(7)+1, 0.5, 1)
		a := FromDense(da, true)
		b := MxM(a, Transpose(a), PlusTimes)
		return ToDense(b).Equal(da.MulTranspose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMxMAAT(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	a := randCSR(rng, 1000, 800, 0.01)
	at := Transpose(a)
	w := NewWorkspace(a.R)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MxMWith(w, a, at, PlusTimes)
	}
}

func TestQuickMxMSortedMatchesGustavson(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		a := randCSRVals(rng, m, k, 0.5)
		b := randCSRVals(rng, k, n, 0.5)
		for _, s := range []Semiring{PlusTimes, OrAnd, PlusPair} {
			if !MxMSorted(a, b, s).Equal(MxM(a, b, s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMxMSortedLargeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randCSR(rng, 800, 600, 0.01)
	b := randCSR(rng, 600, 900, 0.01)
	got := MxMSorted(a, b, PlusTimes)
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(MxM(a, b, PlusTimes)) {
		t.Fatal("ESC product differs on large sparse input")
	}
}

func TestMxMSortedShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MxMSorted(randCSR(rng, 2, 3, 0.5), randCSR(rng, 2, 3, 0.5), PlusTimes)
}

func BenchmarkMxMStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	a := randCSR(rng, 2000, 1500, 0.005)
	at := Transpose(a)
	b.Run("gustavson", func(b *testing.B) {
		w := NewWorkspace(a.R)
		for i := 0; i < b.N; i++ {
			MxMWith(w, a, at, PlusTimes)
		}
	})
	b.Run("esc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MxMSorted(a, at, PlusTimes)
		}
	})
}
