package sparse

import (
	"sync"
	"sync/atomic"
)

// mxmChunk is the number of output rows a worker claims per atomic
// fetch in MxMParallel.
const mxmChunk = 128

// MxMParallel computes A·B over the semiring s with `threads` workers.
// Gustavson's algorithm is row-parallel: each output row depends only
// on A's row and B, so workers claim row chunks with an atomic cursor,
// build their fragment with a private workspace, and the fragments are
// stitched into one CSR afterwards. Results are identical to MxM.
func MxMParallel(a, b *CSR, s Semiring, threads int) *CSR {
	if threads <= 1 || a.R < 2*mxmChunk {
		return MxM(a, b, s)
	}
	if a.C != b.R {
		panic("sparse: MxMParallel shape mismatch " + dims(a.R, a.C) + " · " + dims(b.R, b.C))
	}

	type fragment struct {
		start, end int
		cols       []int32
		vals       []int64
		rowLen     []int32
	}
	var (
		cursor atomic.Int64
		mu     sync.Mutex
		frags  []fragment
		wg     sync.WaitGroup
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewWorkspace(b.C)
			for {
				start := int(cursor.Add(mxmChunk)) - mxmChunk
				if start >= a.R {
					return
				}
				end := start + mxmChunk
				if end > a.R {
					end = a.R
				}
				f := fragment{start: start, end: end, rowLen: make([]int32, end-start)}
				for i := start; i < end; i++ {
					w.reset(b.C)
					arow := a.Row(i)
					avals := a.RowVals(i)
					for k, kc := range arow {
						av := int64(1)
						if avals != nil {
							av = avals[k]
						}
						brow := b.Row(int(kc))
						bvals := b.RowVals(int(kc))
						for t2, j := range brow {
							bv := int64(1)
							if bvals != nil {
								bv = bvals[t2]
							}
							w.scatter(j, s.Mul(av, bv), s.Add)
						}
					}
					sortInt32(w.list)
					for _, j := range w.list {
						f.cols = append(f.cols, j)
						f.vals = append(f.vals, w.acc[j])
					}
					f.rowLen[i-start] = int32(len(w.list))
				}
				mu.Lock()
				frags = append(frags, f)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Stitch fragments in row order.
	out := &CSR{R: a.R, C: b.C, Ptr: make([]int64, a.R+1)}
	var nnz int64
	for _, f := range frags {
		for i, l := range f.rowLen {
			out.Ptr[f.start+i+1] = int64(l)
		}
		nnz += int64(len(f.cols))
	}
	for i := 0; i < a.R; i++ {
		out.Ptr[i+1] += out.Ptr[i]
	}
	out.Col = make([]int32, nnz)
	out.Val = make([]int64, nnz)
	for _, f := range frags {
		copy(out.Col[out.Ptr[f.start]:], f.cols)
		copy(out.Val[out.Ptr[f.start]:], f.vals)
	}
	return out
}
