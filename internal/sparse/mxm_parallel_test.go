package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMxMParallelSmallDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randCSRVals(rng, 10, 8, 0.5)
	b := randCSRVals(rng, 8, 12, 0.5)
	if !MxMParallel(a, b, PlusTimes, 4).Equal(MxM(a, b, PlusTimes)) {
		t.Fatal("small-matrix delegation differs")
	}
}

func TestMxMParallelMatchesSequentialLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randCSR(rng, 1500, 900, 0.01)
	b := randCSR(rng, 900, 1100, 0.01)
	want := MxM(a, b, PlusTimes)
	for _, threads := range []int{2, 3, 8} {
		got := MxMParallel(a, b, PlusTimes, threads)
		if err := got.Validate(); err != nil {
			t.Fatalf("threads=%d: invalid result: %v", threads, err)
		}
		if !got.Equal(want) {
			t.Fatalf("threads=%d differs from sequential", threads)
		}
	}
}

func TestQuickMxMParallelMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Mix of sizes straddling the delegation threshold.
		m := rng.Intn(600) + 1
		k := rng.Intn(40) + 1
		n := rng.Intn(40) + 1
		a := randCSRVals(rng, m, k, 0.2)
		b := randCSRVals(rng, k, n, 0.2)
		return MxMParallel(a, b, PlusTimes, 4).Equal(MxM(a, b, PlusTimes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMxMParallelOtherSemirings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randCSR(rng, 800, 500, 0.01)
	b := randCSR(rng, 500, 700, 0.01)
	for name, s := range map[string]Semiring{"OrAnd": OrAnd, "PlusPair": PlusPair} {
		if !MxMParallel(a, b, s, 3).Equal(MxM(a, b, s)) {
			t.Fatalf("%s parallel differs", name)
		}
	}
}

func TestMxMParallelShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCSR(rng, 600, 5, 0.2)
	b := randCSR(rng, 6, 5, 0.2)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MxMParallel(a, b, PlusTimes, 4)
}

func BenchmarkMxMParallelAAT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randCSR(rng, 3000, 2000, 0.005)
	at := Transpose(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MxMParallel(a, at, PlusTimes, 6)
	}
}
