package sparse

// Monoid is a commutative monoid over int64 used as the "add" of a
// semiring and as the combiner of reductions.
type Monoid struct {
	Identity int64
	Op       func(a, b int64) int64
}

// Semiring pairs an additive monoid with a multiplicative operator, in
// the GraphBLAS sense. Mul need not be commutative.
type Semiring struct {
	Add Monoid
	Mul func(a, b int64) int64
}

// Predefined monoids.
var (
	// PlusMonoid is ordinary integer addition.
	PlusMonoid = Monoid{Identity: 0, Op: func(a, b int64) int64 { return a + b }}
	// MinMonoid takes the minimum; identity is a large sentinel.
	MinMonoid = Monoid{Identity: int64(1) << 62, Op: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}}
	// MaxMonoid takes the maximum.
	MaxMonoid = Monoid{Identity: -(int64(1) << 62), Op: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}}
	// OrMonoid is logical OR on 0/1 values.
	OrMonoid = Monoid{Identity: 0, Op: func(a, b int64) int64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}}
)

// Predefined semirings.
var (
	// PlusTimes is the arithmetic semiring; A·B over it is the ordinary
	// matrix product. AAᵀ over PlusTimes yields wedge counts.
	PlusTimes = Semiring{Add: PlusMonoid, Mul: func(a, b int64) int64 { return a * b }}
	// PlusPair counts structural matches: every aligned pair of stored
	// entries contributes 1 regardless of values. For 0/1 matrices it
	// agrees with PlusTimes; for general values it counts intersections.
	PlusPair = Semiring{Add: PlusMonoid, Mul: func(a, b int64) int64 { return 1 }}
	// OrAnd is the boolean semiring; products have value 1 wherever any
	// structural match exists.
	OrAnd = Semiring{Add: OrMonoid, Mul: func(a, b int64) int64 {
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	}}
	// PlusSecond takes the right operand's value; useful for masked
	// gathers.
	PlusSecond = Semiring{Add: PlusMonoid, Mul: func(a, b int64) int64 { return b }}
)
