package sparse

import (
	"fmt"

	"butterfly/internal/bitvec"
)

func mustSameShape(a, b *CSR, op string) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("sparse: %s shape mismatch %s vs %s", op, dims(a.R, a.C), dims(b.R, b.C)))
	}
}

// EWiseMult returns the element-wise (Hadamard) combination of a and b:
// the output pattern is the intersection of the two patterns, with
// values mul(av, bv).
func EWiseMult(a, b *CSR, mul func(av, bv int64) int64) *CSR {
	mustSameShape(a, b, "EWiseMult")
	out := &CSR{R: a.R, C: a.C, Ptr: make([]int64, a.R+1)}
	for i := 0; i < a.R; i++ {
		ra, rb := a.Row(i), b.Row(i)
		va, vb := a.RowVals(i), b.RowVals(i)
		x, y := 0, 0
		for x < len(ra) && y < len(rb) {
			switch {
			case ra[x] < rb[y]:
				x++
			case ra[x] > rb[y]:
				y++
			default:
				av, bv := int64(1), int64(1)
				if va != nil {
					av = va[x]
				}
				if vb != nil {
					bv = vb[y]
				}
				out.Col = append(out.Col, ra[x])
				out.Val = append(out.Val, mul(av, bv))
				x++
				y++
			}
		}
		out.Ptr[i+1] = int64(len(out.Col))
	}
	return out
}

// Hadamard is EWiseMult with ordinary multiplication — the paper's ∘.
func Hadamard(a, b *CSR) *CSR {
	return EWiseMult(a, b, func(x, y int64) int64 { return x * y })
}

// EWiseAdd returns the element-wise union combination of a and b: the
// output pattern is the union of the patterns; where both store an
// entry the values are combined with add, otherwise the stored value is
// kept.
func EWiseAdd(a, b *CSR, add func(av, bv int64) int64) *CSR {
	mustSameShape(a, b, "EWiseAdd")
	out := &CSR{R: a.R, C: a.C, Ptr: make([]int64, a.R+1)}
	for i := 0; i < a.R; i++ {
		ra, rb := a.Row(i), b.Row(i)
		va, vb := a.RowVals(i), b.RowVals(i)
		x, y := 0, 0
		emit := func(c int32, v int64) {
			out.Col = append(out.Col, c)
			out.Val = append(out.Val, v)
		}
		for x < len(ra) || y < len(rb) {
			switch {
			case y >= len(rb) || (x < len(ra) && ra[x] < rb[y]):
				av := int64(1)
				if va != nil {
					av = va[x]
				}
				emit(ra[x], av)
				x++
			case x >= len(ra) || ra[x] > rb[y]:
				bv := int64(1)
				if vb != nil {
					bv = vb[y]
				}
				emit(rb[y], bv)
				y++
			default:
				av, bv := int64(1), int64(1)
				if va != nil {
					av = va[x]
				}
				if vb != nil {
					bv = vb[y]
				}
				emit(ra[x], add(av, bv))
				x++
				y++
			}
		}
		out.Ptr[i+1] = int64(len(out.Col))
	}
	return out
}

// Apply returns a copy of a with every stored value mapped through fn.
// The pattern is unchanged; zero results stay stored (use Select to
// drop them).
func Apply(a *CSR, fn func(v int64) int64) *CSR {
	out := a.Clone()
	if out.Val == nil {
		out.Val = make([]int64, out.NNZ())
		for k := range out.Val {
			out.Val[k] = 1
		}
	}
	for k, v := range out.Val {
		out.Val[k] = fn(v)
	}
	return out
}

// Select returns a copy of a keeping only entries whose (row, col,
// value) satisfy keep. Dropped entries are removed from the pattern.
func Select(a *CSR, keep func(i int, j int32, v int64) bool) *CSR {
	out := &CSR{R: a.R, C: a.C, Ptr: make([]int64, a.R+1)}
	hasVals := a.Val != nil
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		vals := a.RowVals(i)
		for k, j := range row {
			v := int64(1)
			if vals != nil {
				v = vals[k]
			}
			if !keep(i, j, v) {
				continue
			}
			out.Col = append(out.Col, j)
			if hasVals {
				out.Val = append(out.Val, v)
			}
		}
		out.Ptr[i+1] = int64(len(out.Col))
	}
	return out
}

// ZeroRowsCols returns a copy of a with all entries removed whose row is
// cleared in rowKeep or whose column is cleared in colKeep. A nil mask
// keeps everything on that axis. This implements the paper's
// mask-application steps (22) and the row/column consequences of (21).
func ZeroRowsCols(a *CSR, rowKeep, colKeep *bitvec.Vector) *CSR {
	if rowKeep != nil && rowKeep.Len() != a.R {
		panic(fmt.Sprintf("sparse: ZeroRowsCols row mask length %d, want %d", rowKeep.Len(), a.R))
	}
	if colKeep != nil && colKeep.Len() != a.C {
		panic(fmt.Sprintf("sparse: ZeroRowsCols col mask length %d, want %d", colKeep.Len(), a.C))
	}
	return Select(a, func(i int, j int32, v int64) bool {
		if rowKeep != nil && !rowKeep.Get(i) {
			return false
		}
		if colKeep != nil && !colKeep.Get(int(j)) {
			return false
		}
		return true
	})
}

// PatternOf returns a pattern-only copy of a (values dropped).
func PatternOf(a *CSR) *CSR {
	out := a.Clone()
	out.Val = nil
	return out
}
