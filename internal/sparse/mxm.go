package sparse

import "fmt"

// Workspace holds the per-row dense accumulator used by Gustavson-style
// SpGEMM. One workspace may be reused across many products of the same
// output width; reuse avoids the dominant allocation cost. A workspace
// is not safe for concurrent use — parallel callers allocate one per
// worker.
type Workspace struct {
	acc  []int64 // dense accumulator, len = output columns
	mark []int64 // generation tags: mark[j] == gen means acc[j] is live
	list []int32 // columns touched this row, unsorted
	gen  int64
}

// NewWorkspace returns a workspace for products with ncols output
// columns.
func NewWorkspace(ncols int) *Workspace {
	return &Workspace{
		acc:  make([]int64, ncols),
		mark: make([]int64, ncols),
		list: make([]int32, 0, 256),
		gen:  0,
	}
}

// reset prepares the workspace for a new output row of width ncols,
// growing if necessary.
func (w *Workspace) reset(ncols int) {
	if len(w.acc) < ncols {
		w.acc = make([]int64, ncols)
		w.mark = make([]int64, ncols)
	}
	w.gen++
	w.list = w.list[:0]
}

// scatter adds v into accumulator slot j under the additive monoid.
func (w *Workspace) scatter(j int32, v int64, add Monoid) {
	if w.mark[j] != w.gen {
		w.mark[j] = w.gen
		w.acc[j] = add.Op(add.Identity, v)
		w.list = append(w.list, j)
		return
	}
	w.acc[j] = add.Op(w.acc[j], v)
}

// MxM computes A·B over the semiring s, allocating a fresh workspace.
func MxM(a, b *CSR, s Semiring) *CSR {
	return MxMWith(NewWorkspace(b.C), a, b, s)
}

// MxMWith computes A·B over the semiring s using the supplied workspace.
// Row i of the result is produced by merging the rows of B selected by
// the stored columns of row i of A (Gustavson's algorithm). Output rows
// have sorted, unique columns; the result always carries explicit values.
func MxMWith(w *Workspace, a, b *CSR, s Semiring) *CSR {
	if a.C != b.R {
		panic(fmt.Sprintf("sparse: MxM shape mismatch %s · %s", dims(a.R, a.C), dims(b.R, b.C)))
	}
	out := &CSR{R: a.R, C: b.C, Ptr: make([]int64, a.R+1)}
	out.Col = make([]int32, 0, a.NNZ())
	out.Val = make([]int64, 0, a.NNZ())

	for i := 0; i < a.R; i++ {
		w.reset(b.C)
		arow := a.Row(i)
		avals := a.RowVals(i)
		for k, kc := range arow {
			av := int64(1)
			if avals != nil {
				av = avals[k]
			}
			brow := b.Row(int(kc))
			bvals := b.RowVals(int(kc))
			for t, j := range brow {
				bv := int64(1)
				if bvals != nil {
					bv = bvals[t]
				}
				w.scatter(j, s.Mul(av, bv), s.Add)
			}
		}
		emitRow(out, w, i)
	}
	return out
}

// emitRow appends the workspace contents as row i of out, sorted by
// column index via insertion into a sorted copy (rows are short in
// practice; we sort the touch list).
func emitRow(out *CSR, w *Workspace, i int) {
	sortInt32(w.list)
	for _, j := range w.list {
		out.Col = append(out.Col, j)
		out.Val = append(out.Val, w.acc[j])
	}
	out.Ptr[i+1] = out.Ptr[i] + int64(len(w.list))
}

// MxMMasked computes (A·B) ∘ M over the semiring s: only output
// positions where the mask M stores an entry are computed and kept.
// The mask's values are ignored; its pattern is the mask. This is the
// kernel behind equation (25)'s (AAᵀA) ∘ A, which never materializes
// the dense-ish AAᵀA.
func MxMMasked(a, b, m *CSR, s Semiring) *CSR {
	if a.C != b.R {
		panic(fmt.Sprintf("sparse: MxMMasked shape mismatch %s · %s", dims(a.R, a.C), dims(b.R, b.C)))
	}
	if m.R != a.R || m.C != b.C {
		panic(fmt.Sprintf("sparse: MxMMasked mask shape %s, want %s", dims(m.R, m.C), dims(a.R, b.C)))
	}
	w := NewWorkspace(b.C)
	out := &CSR{R: a.R, C: b.C, Ptr: make([]int64, a.R+1)}
	out.Col = make([]int32, 0, m.NNZ())
	out.Val = make([]int64, 0, m.NNZ())

	for i := 0; i < a.R; i++ {
		w.reset(b.C)
		arow := a.Row(i)
		avals := a.RowVals(i)
		for k, kc := range arow {
			av := int64(1)
			if avals != nil {
				av = avals[k]
			}
			brow := b.Row(int(kc))
			bvals := b.RowVals(int(kc))
			for t, j := range brow {
				bv := int64(1)
				if bvals != nil {
					bv = bvals[t]
				}
				w.scatter(j, s.Mul(av, bv), s.Add)
			}
		}
		// Keep only masked positions, in mask order (sorted already).
		for _, j := range m.Row(i) {
			if w.mark[j] == w.gen {
				out.Col = append(out.Col, j)
				out.Val = append(out.Val, w.acc[j])
			}
		}
		out.Ptr[i+1] = int64(len(out.Col))
	}
	return out
}

// MxV computes y = A·x over PlusTimes with a dense vector x.
func MxV(a *CSR, x []int64) []int64 {
	if len(x) != a.C {
		panic(fmt.Sprintf("sparse: MxV vector length %d, want %d", len(x), a.C))
	}
	y := make([]int64, a.R)
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		vals := a.RowVals(i)
		var s int64
		for k, j := range row {
			v := int64(1)
			if vals != nil {
				v = vals[k]
			}
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// VxM computes yᵀ = xᵀ·A over PlusTimes (equivalently Aᵀ·x) without
// forming the transpose.
func VxM(x []int64, a *CSR) []int64 {
	if len(x) != a.R {
		panic(fmt.Sprintf("sparse: VxM vector length %d, want %d", len(x), a.R))
	}
	y := make([]int64, a.C)
	for i := 0; i < a.R; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		vals := a.RowVals(i)
		for k, j := range row {
			v := int64(1)
			if vals != nil {
				v = vals[k]
			}
			y[j] += xi * v
		}
	}
	return y
}

// DotRows returns ⟨row i of a, row j of b⟩ over PlusTimes by merging the
// two sorted rows; O(deg(i) + deg(j)).
func DotRows(a *CSR, i int, b *CSR, j int) int64 {
	if a.C != b.C {
		panic(fmt.Sprintf("sparse: DotRows width mismatch %d vs %d", a.C, b.C))
	}
	ra, rb := a.Row(i), b.Row(j)
	va, vb := a.RowVals(i), b.RowVals(j)
	var s int64
	x, y := 0, 0
	for x < len(ra) && y < len(rb) {
		switch {
		case ra[x] < rb[y]:
			x++
		case ra[x] > rb[y]:
			y++
		default:
			av, bv := int64(1), int64(1)
			if va != nil {
				av = va[x]
			}
			if vb != nil {
				bv = vb[y]
			}
			s += av * bv
			x++
			y++
		}
	}
	return s
}

// sortInt32 sorts a short int32 slice ascending. Insertion sort below a
// threshold, pdq-ish shell sort above — output rows of SpGEMM are
// usually tiny and this avoids sort.Slice's interface overhead.
func sortInt32(s []int32) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	// Shell sort with Ciura-like gaps: in-place, no allocation, fine for
	// the mid-size rows that show up in dense-ish graphs.
	gaps := [...]int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, g := range gaps {
		for i := g; i < len(s); i++ {
			v := s[i]
			j := i
			for j >= g && s[j-g] > v {
				s[j] = s[j-g]
				j -= g
			}
			s[j] = v
		}
	}
}
