package sparse

import (
	"fmt"
	"sort"
)

// DupPolicy says how the COO builder combines duplicate (i, j) entries.
type DupPolicy int

const (
	// DupSum adds duplicate values (the default GraphBLAS build).
	DupSum DupPolicy = iota
	// DupBinary keeps a single entry with value 1 regardless of the
	// duplicate values — the right policy for adjacency patterns of
	// simple graphs.
	DupBinary
)

// COO is an append-only coordinate-format builder for sparse matrices.
type COO struct {
	R, C int
	I, J []int32
	V    []int64 // nil until a value is appended; pattern otherwise
}

// NewCOO returns an empty builder for an r×c matrix.
func NewCOO(r, c int) *COO {
	if r < 0 || c < 0 {
		panic("sparse: negative COO dimension " + dims(r, c))
	}
	return &COO{R: r, C: c}
}

// Add appends a pattern entry (value 1) at (i, j).
func (b *COO) Add(i, j int) { b.AddVal(i, j, 1) }

// AddVal appends an entry with an explicit value.
func (b *COO) AddVal(i, j int, v int64) {
	if i < 0 || i >= b.R || j < 0 || j >= b.C {
		panic(fmt.Sprintf("sparse: COO entry (%d,%d) out of range %s", i, j, dims(b.R, b.C)))
	}
	if b.V == nil && v != 1 {
		// Materialize values for all previous implicit-1 entries.
		b.V = make([]int64, len(b.I), cap(b.I))
		for k := range b.V {
			b.V[k] = 1
		}
	}
	b.I = append(b.I, int32(i))
	b.J = append(b.J, int32(j))
	if b.V != nil {
		b.V = append(b.V, v)
	}
}

// Len returns the number of appended entries (before dedup).
func (b *COO) Len() int { return len(b.I) }

// ToCSR sorts, deduplicates and compresses the builder into CSR form.
// The builder remains usable afterwards.
func (b *COO) ToCSR(dup DupPolicy) *CSR {
	n := len(b.I)
	order := make([]int32, n)
	for k := range order {
		order[k] = int32(k)
	}
	sort.Slice(order, func(x, y int) bool {
		kx, ky := order[x], order[y]
		if b.I[kx] != b.I[ky] {
			return b.I[kx] < b.I[ky]
		}
		return b.J[kx] < b.J[ky]
	})

	out := &CSR{R: b.R, C: b.C, Ptr: make([]int64, b.R+1)}
	out.Col = make([]int32, 0, n)
	// DupSum must materialize values even for an implicit-1 builder:
	// duplicate pattern entries sum to their multiplicity.
	hasVals := dup == DupSum
	if hasVals {
		out.Val = make([]int64, 0, n)
	}

	for k := 0; k < n; {
		idx := order[k]
		i, j := b.I[idx], b.J[idx]
		var v int64 = 1
		if b.V != nil {
			v = b.V[idx]
		}
		k++
		for k < n {
			next := order[k]
			if b.I[next] != i || b.J[next] != j {
				break
			}
			if dup == DupSum {
				if b.V != nil {
					v += b.V[next]
				} else {
					v++
				}
			}
			k++
		}
		out.Ptr[i+1]++
		out.Col = append(out.Col, j)
		if hasVals {
			out.Val = append(out.Val, v)
		}
	}
	for i := 0; i < b.R; i++ {
		out.Ptr[i+1] += out.Ptr[i]
	}
	return out
}

// ToCSC builds CSC form directly (via the transpose reinterpretation).
func (b *COO) ToCSC(dup DupPolicy) *CSC {
	t := &COO{R: b.C, C: b.R, I: b.J, J: b.I, V: b.V}
	return CSCFromCSRTranspose(t.ToCSR(dup))
}
