package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/bitvec"
	"butterfly/internal/dense"
)

func TestQuickHadamardMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(8)+1, rng.Intn(8)+1
		da := randDense(rng, m, n, 0.5, 4)
		db := randDense(rng, m, n, 0.5, 4)
		got := Hadamard(FromDense(da, false), FromDense(db, false))
		if got.Validate() != nil {
			return false
		}
		return ToDense(got).Equal(da.Hadamard(db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestHadamardPatternIntersection(t *testing.T) {
	b1 := NewCOO(2, 3)
	b1.Add(0, 0)
	b1.Add(0, 2)
	b1.Add(1, 1)
	b2 := NewCOO(2, 3)
	b2.Add(0, 2)
	b2.Add(1, 0)
	h := Hadamard(b1.ToCSR(DupBinary), b2.ToCSR(DupBinary))
	if h.NNZ() != 1 || h.At(0, 2) != 1 {
		t.Fatalf("pattern intersection wrong: nnz=%d", h.NNZ())
	}
}

func TestEWiseMultShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	Hadamard(randCSR(rng, 2, 3, 0.5), randCSR(rng, 3, 2, 0.5))
}

func TestQuickEWiseAddMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(8)+1, rng.Intn(8)+1
		da := randDense(rng, m, n, 0.4, 4)
		db := randDense(rng, m, n, 0.4, 4)
		got := EWiseAdd(FromDense(da, false), FromDense(db, false),
			func(x, y int64) int64 { return x + y })
		if got.Validate() != nil {
			return false
		}
		return ToDense(got).Equal(da.Add(db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestEWiseAddUnionPattern(t *testing.T) {
	b1 := NewCOO(1, 4)
	b1.Add(0, 0)
	b1.Add(0, 2)
	b2 := NewCOO(1, 4)
	b2.Add(0, 2)
	b2.Add(0, 3)
	u := EWiseAdd(b1.ToCSR(DupBinary), b2.ToCSR(DupBinary),
		func(x, y int64) int64 { return x + y })
	if u.NNZ() != 3 {
		t.Fatalf("union nnz = %d, want 3", u.NNZ())
	}
	if u.At(0, 0) != 1 || u.At(0, 2) != 2 || u.At(0, 3) != 1 {
		t.Fatal("union values wrong")
	}
}

func TestApply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randCSRVals(rng, 5, 5, 0.5)
	sq := Apply(a, func(v int64) int64 { return v * v })
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if sq.At(i, j) != a.At(i, j)*a.At(i, j) {
				t.Fatalf("Apply square wrong at (%d,%d)", i, j)
			}
		}
	}
	// Applying to a pattern matrix materializes values.
	p := randCSR(rng, 4, 4, 0.5)
	doubled := Apply(p, func(v int64) int64 { return 2 * v })
	if doubled.NNZ() != p.NNZ() {
		t.Fatal("Apply changed pattern")
	}
	if doubled.NNZ() > 0 && doubled.Val[0] != 2 {
		t.Fatal("Apply on pattern did not materialize 1s")
	}
}

func TestSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randCSRVals(rng, 6, 6, 0.6)
	kept := Select(a, func(i int, j int32, v int64) bool { return v >= 3 })
	if err := kept.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			v := a.At(i, j)
			want := int64(0)
			if v >= 3 {
				want = v
			}
			if kept.At(i, j) != want {
				t.Fatalf("Select wrong at (%d,%d): %d want %d", i, j, kept.At(i, j), want)
			}
		}
	}
}

func TestZeroRowsCols(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCSR(rng, 6, 5, 0.6)
	rowKeep := bitvec.NewFull(6)
	rowKeep.Clear(2)
	colKeep := bitvec.NewFull(5)
	colKeep.Clear(0)
	b := ZeroRowsCols(a, rowKeep, colKeep)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			want := a.At(i, j)
			if i == 2 || j == 0 {
				want = 0
			}
			if b.At(i, j) != want {
				t.Fatalf("ZeroRowsCols wrong at (%d,%d)", i, j)
			}
		}
	}
	// Nil masks are no-ops.
	if !ZeroRowsCols(a, nil, nil).Equal(a) {
		t.Fatal("nil masks altered matrix")
	}
}

func TestZeroRowsColsBadMaskPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCSR(rng, 4, 4, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("bad mask length did not panic")
		}
	}()
	ZeroRowsCols(a, bitvec.New(3), nil)
}

func TestPatternOf(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randCSRVals(rng, 5, 5, 0.5)
	p := PatternOf(a)
	if !p.IsPattern() {
		t.Fatal("PatternOf kept values")
	}
	if p.NNZ() != a.NNZ() {
		t.Fatal("PatternOf changed pattern")
	}
}

func TestReductions(t *testing.T) {
	d := dense.NewFromRows([][]int64{
		{1, 0, 2},
		{0, 3, 0},
		{4, 0, 5},
	})
	a := FromDense(d, false)
	if SumAll(a) != 15 {
		t.Fatalf("SumAll = %d", SumAll(a))
	}
	if Trace(a) != 9 {
		t.Fatalf("Trace = %d", Trace(a))
	}
	dg := Diag(a)
	if dg[0] != 1 || dg[1] != 3 || dg[2] != 5 {
		t.Fatalf("Diag = %v", dg)
	}
	rs := RowSums(a)
	if rs[0] != 3 || rs[1] != 3 || rs[2] != 9 {
		t.Fatalf("RowSums = %v", rs)
	}
	cs := ColSums(a)
	if cs[0] != 5 || cs[1] != 3 || cs[2] != 7 {
		t.Fatalf("ColSums = %v", cs)
	}
	rd := RowDegrees(a)
	if rd[0] != 2 || rd[1] != 1 || rd[2] != 2 {
		t.Fatalf("RowDegrees = %v", rd)
	}
	cd := ColDegrees(a)
	if cd[0] != 2 || cd[1] != 1 || cd[2] != 2 {
		t.Fatalf("ColDegrees = %v", cd)
	}
	if MaxValue(a) != 5 {
		t.Fatalf("MaxValue = %d", MaxValue(a))
	}
	if Reduce(a, MaxMonoid) != 5 || Reduce(a, PlusMonoid) != 15 {
		t.Fatal("Reduce wrong")
	}
}

func TestReductionsPattern(t *testing.T) {
	b := NewCOO(2, 2)
	b.Add(0, 0)
	b.Add(1, 1)
	b.Add(1, 0)
	a := b.ToCSR(DupBinary)
	if SumAll(a) != 3 {
		t.Fatalf("pattern SumAll = %d", SumAll(a))
	}
	if Trace(a) != 2 {
		t.Fatalf("pattern Trace = %d", Trace(a))
	}
	if MaxValue(a) != 1 {
		t.Fatalf("pattern MaxValue = %d", MaxValue(a))
	}
	if Reduce(a, PlusMonoid) != 3 {
		t.Fatal("pattern Reduce wrong")
	}
	if MaxValue(NewCOO(2, 2).ToCSR(DupBinary)) != 0 {
		t.Fatal("empty MaxValue should be 0")
	}
}

func TestTraceNonSquarePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	defer func() {
		if recover() == nil {
			t.Fatal("Trace of non-square did not panic")
		}
	}()
	Trace(randCSR(rng, 2, 3, 0.5))
}
