package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/dense"
)

// randDense returns a random m×n matrix; binary when maxVal == 1.
func randDense(rng *rand.Rand, m, n int, density float64, maxVal int64) *dense.Matrix {
	d := dense.New(m, n)
	for i := range d.Data {
		if rng.Float64() < density {
			d.Data[i] = 1 + rng.Int63n(maxVal)
		}
	}
	return d
}

func randCSR(rng *rand.Rand, m, n int, density float64) *CSR {
	return FromDense(randDense(rng, m, n, density, 1), true)
}

func randCSRVals(rng *rand.Rand, m, n int, density float64) *CSR {
	return FromDense(randDense(rng, m, n, density, 5), false)
}

func TestEmptyCSR(t *testing.T) {
	a := NewCOO(3, 4).ToCSR(DupBinary)
	if a.NNZ() != 0 || a.R != 3 || a.C != 4 {
		t.Fatalf("empty CSR wrong: nnz=%d %dx%d", a.NNZ(), a.R, a.C)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.At(2, 3) != 0 {
		t.Fatal("At on empty matrix should be 0")
	}
}

func TestCOOBuildPattern(t *testing.T) {
	b := NewCOO(3, 3)
	b.Add(0, 1)
	b.Add(2, 0)
	b.Add(0, 0)
	b.Add(2, 2)
	a := b.ToCSR(DupBinary)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", a.NNZ())
	}
	if !a.IsPattern() {
		t.Fatal("expected pattern matrix")
	}
	if a.At(0, 0) != 1 || a.At(0, 1) != 1 || a.At(2, 0) != 1 || a.At(2, 2) != 1 {
		t.Fatal("missing entries")
	}
	if a.At(1, 1) != 0 {
		t.Fatal("phantom entry at (1,1)")
	}
}

func TestCOODuplicatesBinary(t *testing.T) {
	b := NewCOO(2, 2)
	b.Add(1, 1)
	b.Add(1, 1)
	b.Add(1, 1)
	a := b.ToCSR(DupBinary)
	if a.NNZ() != 1 || a.At(1, 1) != 1 {
		t.Fatalf("binary dedup failed: nnz=%d val=%d", a.NNZ(), a.At(1, 1))
	}
}

func TestCOODuplicatesSum(t *testing.T) {
	b := NewCOO(2, 2)
	b.AddVal(0, 1, 2)
	b.AddVal(0, 1, 3)
	b.AddVal(1, 0, 4)
	a := b.ToCSR(DupSum)
	if a.At(0, 1) != 5 || a.At(1, 0) != 4 {
		t.Fatalf("sum dedup failed: %d, %d", a.At(0, 1), a.At(1, 0))
	}
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", a.NNZ())
	}
}

func TestCOOMaterializesValuesLazily(t *testing.T) {
	b := NewCOO(2, 2)
	b.Add(0, 0)       // implicit 1
	b.AddVal(1, 1, 7) // forces value materialization
	a := b.ToCSR(DupSum)
	if a.At(0, 0) != 1 || a.At(1, 1) != 7 {
		t.Fatalf("lazy materialization broken: %d, %d", a.At(0, 0), a.At(1, 1))
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("COO.Add out of range did not panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0)
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := NewCOO(2, 2)
	good.Add(0, 0)
	good.Add(0, 1)
	a := good.ToCSR(DupBinary)

	cases := map[string]func(*CSR){
		"badPtrLen":    func(c *CSR) { c.Ptr = c.Ptr[:1] },
		"ptrNotZero":   func(c *CSR) { c.Ptr[0] = 1 },
		"ptrDecrease":  func(c *CSR) { c.Ptr[1] = 5; c.Ptr[2] = 2 },
		"colOutRange":  func(c *CSR) { c.Col[0] = 9 },
		"colUnsorted":  func(c *CSR) { c.Col[0], c.Col[1] = c.Col[1], c.Col[0] },
		"colDuplicate": func(c *CSR) { c.Col[1] = c.Col[0] },
	}
	for name, corrupt := range cases {
		c := a.Clone()
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate did not catch corruption", name)
		}
	}
}

func TestAtBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDense(rng, 20, 30, 0.3, 5)
	a := FromDense(d, false)
	for i := 0; i < 20; i++ {
		for j := 0; j < 30; j++ {
			if a.At(i, j) != d.At(i, j) {
				t.Fatalf("At(%d,%d) = %d, want %d", i, j, a.At(i, j), d.At(i, j))
			}
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCSRVals(rng, 8, 8, 0.4)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	if b.NNZ() > 0 {
		b.Val[0]++
		if a.Equal(b) {
			t.Fatal("value change not detected")
		}
	}
}

func TestEqualPatternVsExplicitOnes(t *testing.T) {
	b := NewCOO(2, 2)
	b.Add(0, 1)
	pat := b.ToCSR(DupBinary)
	explicit := pat.Clone()
	explicit.Val = []int64{1}
	if !pat.Equal(explicit) {
		t.Fatal("pattern should equal explicit all-ones matrix")
	}
	explicit.Val[0] = 2
	if pat.Equal(explicit) {
		t.Fatal("pattern should not equal matrix with value 2")
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := randCSRVals(rng, rng.Intn(10)+1, rng.Intn(10)+1, rng.Float64())
		tt := Transpose(Transpose(a))
		if !a.Equal(tt) {
			t.Fatalf("trial %d: double transpose differs", trial)
		}
		if err := Transpose(a).Validate(); err != nil {
			t.Fatalf("trial %d: transpose invalid: %v", trial, err)
		}
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randDense(rng, 7, 11, 0.35, 4)
	got := ToDense(Transpose(FromDense(d, false)))
	if !got.Equal(d.Transpose()) {
		t.Fatal("sparse transpose != dense transpose")
	}
}

func TestCSCConversions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randCSR(rng, 9, 5, 0.4)
	csc := ToCSC(a)
	if csc.R != 9 || csc.C != 5 {
		t.Fatalf("CSC dims %dx%d", csc.R, csc.C)
	}
	if csc.NNZ() != a.NNZ() {
		t.Fatalf("CSC nnz %d, want %d", csc.NNZ(), a.NNZ())
	}
	// Column j of the CSC must equal column j of the dense matrix.
	d := ToDense(a)
	for j := 0; j < 5; j++ {
		rows := csc.ColIdx(j)
		count := 0
		for i := 0; i < 9; i++ {
			if d.At(i, j) != 0 {
				count++
			}
		}
		if len(rows) != count || csc.ColDeg(j) != count {
			t.Fatalf("column %d: %d rows, want %d", j, len(rows), count)
		}
		for _, i := range rows {
			if d.At(int(i), j) == 0 {
				t.Fatalf("CSC column %d lists row %d with no entry", j, i)
			}
		}
	}
	back := ToCSR(csc)
	if !back.Equal(a) {
		t.Fatal("CSC→CSR round trip differs")
	}
}

func TestAsCSRTransposeZeroCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randCSR(rng, 6, 4, 0.5)
	csc := ToCSC(a)
	at := csc.AsCSRTranspose()
	if !at.Equal(Transpose(a)) {
		t.Fatal("AsCSRTranspose is not the transpose")
	}
}

func TestFromDensePatternNonBinaryPanics(t *testing.T) {
	d := dense.New(1, 1)
	d.Set(0, 0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("FromDense pattern of non-binary did not panic")
		}
	}()
	FromDense(d, true)
}

func TestQuickDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randDense(rng, rng.Intn(10)+1, rng.Intn(10)+1, rng.Float64(), 6)
		return ToDense(FromDense(d, false)).Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCOOOrderInsensitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(8)+1, rng.Intn(8)+1
		type e struct{ i, j int }
		var edges []e
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					edges = append(edges, e{i, j})
				}
			}
		}
		b1 := NewCOO(m, n)
		for _, ed := range edges {
			b1.Add(ed.i, ed.j)
		}
		b2 := NewCOO(m, n)
		for _, k := range rng.Perm(len(edges)) {
			b2.Add(edges[k].i, edges[k].j)
		}
		return b1.ToCSR(DupBinary).Equal(b2.ToCSR(DupBinary))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSortInt32(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 10, 23, 24, 100, 1000} {
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(500))
		}
		sortInt32(s)
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}

// FuzzCOOBuild drives the COO builder with fuzz bytes and checks the
// compressed result against a naive map-based construction.
func FuzzCOOBuild(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		const m, n = 7, 5
		b := NewCOO(m, n)
		ref := map[[2]int]int64{}
		for i := 0; i+2 < len(data); i += 3 {
			u := int(data[i]) % m
			v := int(data[i+1]) % n
			val := int64(data[i+2])%5 + 1
			b.AddVal(u, v, val)
			ref[[2]int{u, v}] += val
		}
		a := b.ToCSR(DupSum)
		if err := a.Validate(); err != nil {
			t.Fatalf("invalid CSR: %v", err)
		}
		if a.NNZ() != int64(len(ref)) {
			t.Fatalf("nnz %d, want %d", a.NNZ(), len(ref))
		}
		for k, want := range ref {
			if got := a.At(k[0], k[1]); got != want {
				t.Fatalf("At(%d,%d) = %d, want %d", k[0], k[1], got, want)
			}
		}
		// Binary dedup path agrees on the pattern.
		pat := b.ToCSR(DupBinary)
		if pat.NNZ() != int64(len(ref)) {
			t.Fatalf("binary nnz %d, want %d", pat.NNZ(), len(ref))
		}
	})
}
