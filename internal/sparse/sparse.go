// Package sparse provides hand-rolled sparse matrix kernels: CSR and CSC
// storage, a COO builder, transposition, sparse matrix–matrix and
// matrix–vector products over pluggable semirings, element-wise
// operations, selections, and reductions.
//
// The package is the computational substrate for the butterfly-counting
// algorithms: the paper's biadjacency matrix A is held as a pattern CSR
// (implicit 1 values) together with its transpose, and every term of the
// linear-algebraic specification (AAᵀ products, Hadamard masks, traces,
// diagonals) maps to a kernel here.
//
// Conventions:
//   - Row/column indices are int32 (graphs of interest are ≪ 2³¹).
//   - Offsets (Ptr) are int64 so nnz may exceed 2³¹.
//   - Values are int64; a nil Val slice denotes a pattern matrix whose
//     stored entries are all implicitly 1.
//   - Column indices within each row are sorted ascending and unique;
//     NewCSR validates this, builders guarantee it.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	R, C int     // dimensions
	Ptr  []int64 // row offsets, len R+1
	Col  []int32 // column indices, len nnz, sorted within each row
	Val  []int64 // values, len nnz, or nil for a pattern matrix
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int64 {
	if len(a.Ptr) == 0 {
		return 0
	}
	return a.Ptr[a.R]
}

// IsPattern reports whether the matrix stores no explicit values
// (all stored entries count as 1).
func (a *CSR) IsPattern() bool { return a.Val == nil }

// Row returns the column indices of row i. The slice aliases internal
// storage; callers must not modify it.
func (a *CSR) Row(i int) []int32 { return a.Col[a.Ptr[i]:a.Ptr[i+1]] }

// RowVals returns the values of row i, or nil for a pattern matrix.
func (a *CSR) RowVals(i int) []int64 {
	if a.Val == nil {
		return nil
	}
	return a.Val[a.Ptr[i]:a.Ptr[i+1]]
}

// RowDeg returns the number of stored entries in row i.
func (a *CSR) RowDeg(i int) int { return int(a.Ptr[i+1] - a.Ptr[i]) }

// At returns the value at (i, j), or 0 if no entry is stored. It binary
// searches row i, so it costs O(log deg(i)).
func (a *CSR) At(i, j int) int64 {
	row := a.Row(i)
	k := sort.Search(len(row), func(k int) bool { return row[k] >= int32(j) })
	if k < len(row) && row[k] == int32(j) {
		if a.Val == nil {
			return 1
		}
		return a.Val[a.Ptr[i]+int64(k)]
	}
	return 0
}

// Validate checks structural invariants and returns an error describing
// the first violation, or nil.
func (a *CSR) Validate() error {
	if a.R < 0 || a.C < 0 {
		return fmt.Errorf("sparse: negative dimension %dx%d", a.R, a.C)
	}
	if len(a.Ptr) != a.R+1 {
		return fmt.Errorf("sparse: len(Ptr) = %d, want %d", len(a.Ptr), a.R+1)
	}
	if a.Ptr[0] != 0 {
		return fmt.Errorf("sparse: Ptr[0] = %d, want 0", a.Ptr[0])
	}
	for i := 0; i < a.R; i++ {
		if a.Ptr[i+1] < a.Ptr[i] {
			return fmt.Errorf("sparse: Ptr not monotone at row %d", i)
		}
	}
	nnz := a.Ptr[a.R]
	if int64(len(a.Col)) != nnz {
		return fmt.Errorf("sparse: len(Col) = %d, want %d", len(a.Col), nnz)
	}
	if a.Val != nil && int64(len(a.Val)) != nnz {
		return fmt.Errorf("sparse: len(Val) = %d, want %d", len(a.Val), nnz)
	}
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		for k, c := range row {
			if c < 0 || int(c) >= a.C {
				return fmt.Errorf("sparse: row %d has column %d out of range [0,%d)", i, c, a.C)
			}
			if k > 0 && row[k-1] >= c {
				return fmt.Errorf("sparse: row %d not strictly sorted at position %d", i, k)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of a.
func (a *CSR) Clone() *CSR {
	b := &CSR{R: a.R, C: a.C,
		Ptr: append([]int64(nil), a.Ptr...),
		Col: append([]int32(nil), a.Col...),
	}
	if a.Val != nil {
		b.Val = append([]int64(nil), a.Val...)
	}
	return b
}

// Equal reports whether a and b have identical shape, pattern and values
// (a pattern matrix equals a value matrix whose stored values are all 1).
func (a *CSR) Equal(b *CSR) bool {
	if a.R != b.R || a.C != b.C || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i <= a.R; i++ {
		if a.Ptr[i] != b.Ptr[i] {
			return false
		}
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] {
			return false
		}
	}
	for k := int64(0); k < a.NNZ(); k++ {
		av, bv := int64(1), int64(1)
		if a.Val != nil {
			av = a.Val[k]
		}
		if b.Val != nil {
			bv = b.Val[k]
		}
		if av != bv {
			return false
		}
	}
	return true
}

// CSC is a compressed-sparse-column matrix. CSC(A) stores the same
// pattern as CSR(Aᵀ); it exists as a named type because the paper's
// column-partitioned algorithms (invariants 1–4) iterate over exposed
// columns, for which CSC is the natural layout.
type CSC struct {
	R, C int     // dimensions
	Ptr  []int64 // column offsets, len C+1
	Row  []int32 // row indices, len nnz, sorted within each column
	Val  []int64 // values, or nil for a pattern matrix
}

// NNZ returns the number of stored entries.
func (a *CSC) NNZ() int64 {
	if len(a.Ptr) == 0 {
		return 0
	}
	return a.Ptr[a.C]
}

// ColIdx returns the row indices of column j; the slice aliases internal
// storage.
func (a *CSC) ColIdx(j int) []int32 { return a.Row[a.Ptr[j]:a.Ptr[j+1]] }

// ColDeg returns the number of stored entries in column j.
func (a *CSC) ColDeg(j int) int { return int(a.Ptr[j+1] - a.Ptr[j]) }

// AsCSRTranspose reinterprets the CSC storage of A as the CSR storage of
// Aᵀ without copying.
func (a *CSC) AsCSRTranspose() *CSR {
	return &CSR{R: a.C, C: a.R, Ptr: a.Ptr, Col: a.Row, Val: a.Val}
}

// CSCFromCSRTranspose reinterprets CSR storage of Aᵀ as CSC storage of A
// without copying.
func CSCFromCSRTranspose(at *CSR) *CSC {
	return &CSC{R: at.C, C: at.R, Ptr: at.Ptr, Row: at.Col, Val: at.Val}
}

// Dims formats the dimensions for error messages.
func dims(r, c int) string { return fmt.Sprintf("%dx%d", r, c) }
