package sparse

import "butterfly/internal/dense"

// Transpose returns Aᵀ in CSR form using a counting sort over columns;
// O(nnz + R + C) time, no comparison sort.
func Transpose(a *CSR) *CSR {
	t := &CSR{R: a.C, C: a.R, Ptr: make([]int64, a.C+1)}
	nnz := a.NNZ()
	t.Col = make([]int32, nnz)
	if a.Val != nil {
		t.Val = make([]int64, nnz)
	}

	for _, j := range a.Col {
		t.Ptr[j+1]++
	}
	for j := 0; j < a.C; j++ {
		t.Ptr[j+1] += t.Ptr[j]
	}
	// next[j] is the insertion cursor for row j of the transpose.
	next := make([]int64, a.C)
	copy(next, t.Ptr[:a.C])
	for i := 0; i < a.R; i++ {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			j := a.Col[k]
			pos := next[j]
			next[j]++
			t.Col[pos] = int32(i)
			if a.Val != nil {
				t.Val[pos] = a.Val[k]
			}
		}
	}
	return t
}

// ToCSC converts a CSR matrix to CSC form (same matrix, column-major
// compressed storage).
func ToCSC(a *CSR) *CSC { return CSCFromCSRTranspose(Transpose(a)) }

// ToCSR converts a CSC matrix to CSR form.
func ToCSR(a *CSC) *CSR { return Transpose(a.AsCSRTranspose()) }

// FromDense builds a CSR matrix from a dense one, storing every non-zero
// entry. If pattern is true, values are dropped (entries become implicit
// 1s) — entries must then be 0/1.
func FromDense(m *dense.Matrix, pattern bool) *CSR {
	a := &CSR{R: m.Rows, C: m.Cols, Ptr: make([]int64, m.Rows+1)}
	if !pattern {
		a.Val = []int64{}
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			if v == 0 {
				continue
			}
			if pattern && v != 1 {
				panic("sparse: FromDense pattern conversion of non-binary matrix")
			}
			a.Col = append(a.Col, int32(j))
			if !pattern {
				a.Val = append(a.Val, v)
			}
			a.Ptr[i+1]++
		}
	}
	for i := 0; i < m.Rows; i++ {
		a.Ptr[i+1] += a.Ptr[i]
	}
	return a
}

// ToDense expands a CSR matrix to dense form (test/debug helper).
func ToDense(a *CSR) *dense.Matrix {
	m := dense.New(a.R, a.C)
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		vals := a.RowVals(i)
		for k, j := range row {
			v := int64(1)
			if vals != nil {
				v = vals[k]
			}
			m.Set(i, int(j), v)
		}
	}
	return m
}
