package sparse

import "fmt"

// SumAll returns Σᵢⱼ a(i,j) over stored entries.
func SumAll(a *CSR) int64 {
	if a.Val == nil {
		return a.NNZ()
	}
	var s int64
	for _, v := range a.Val {
		s += v
	}
	return s
}

// Trace returns Γ(a) = Σᵢ a(i,i). Panics if a is not square.
func Trace(a *CSR) int64 {
	if a.R != a.C {
		panic(fmt.Sprintf("sparse: Trace of non-square %s", dims(a.R, a.C)))
	}
	var t int64
	for i := 0; i < a.R; i++ {
		t += a.At(i, i)
	}
	return t
}

// Diag returns the main diagonal of a square matrix as a dense vector.
func Diag(a *CSR) []int64 {
	if a.R != a.C {
		panic(fmt.Sprintf("sparse: Diag of non-square %s", dims(a.R, a.C)))
	}
	d := make([]int64, a.R)
	for i := 0; i < a.R; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// RowSums returns the per-row sums of stored values.
func RowSums(a *CSR) []int64 {
	s := make([]int64, a.R)
	for i := 0; i < a.R; i++ {
		if a.Val == nil {
			s[i] = int64(a.RowDeg(i))
			continue
		}
		for _, v := range a.RowVals(i) {
			s[i] += v
		}
	}
	return s
}

// ColSums returns the per-column sums of stored values.
func ColSums(a *CSR) []int64 {
	s := make([]int64, a.C)
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		vals := a.RowVals(i)
		for k, j := range row {
			v := int64(1)
			if vals != nil {
				v = vals[k]
			}
			s[j] += v
		}
	}
	return s
}

// RowDegrees returns the stored-entry count of each row (the V1 degree
// vector when a is a biadjacency pattern).
func RowDegrees(a *CSR) []int64 {
	d := make([]int64, a.R)
	for i := 0; i < a.R; i++ {
		d[i] = int64(a.RowDeg(i))
	}
	return d
}

// ColDegrees returns the stored-entry count of each column.
func ColDegrees(a *CSR) []int64 {
	d := make([]int64, a.C)
	for _, j := range a.Col {
		d[j]++
	}
	return d
}

// Reduce folds all stored values through the monoid.
func Reduce(a *CSR, m Monoid) int64 {
	acc := m.Identity
	if a.Val == nil {
		for i := int64(0); i < a.NNZ(); i++ {
			acc = m.Op(acc, 1)
		}
		return acc
	}
	for _, v := range a.Val {
		acc = m.Op(acc, v)
	}
	return acc
}

// MaxValue returns the largest stored value, or 0 for an empty matrix.
func MaxValue(a *CSR) int64 {
	if a.NNZ() == 0 {
		return 0
	}
	if a.Val == nil {
		return 1
	}
	best := a.Val[0]
	for _, v := range a.Val[1:] {
		if v > best {
			best = v
		}
	}
	return best
}
