package matrixmarket

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"butterfly/internal/gen"
)

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 4 3
1 1
2 4
3 2
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 3 || g.NumV2() != 4 || g.NumEdges() != 3 {
		t.Fatalf("parsed %s", g)
	}
	if !g.HasEdge(1, 3) {
		t.Fatal("edge (2,4) missing")
	}
}

func TestReadIntegerAndRealValues(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 3
1 1 5
1 2 0
2 2 -1
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Explicit zero is not an edge; non-zeros are.
	if g.NumEdges() != 2 || g.HasEdge(0, 1) {
		t.Fatalf("integer parse wrong: %s", g)
	}

	in = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 0.5\n"
	g, err = ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatal("real parse wrong")
	}
}

func TestReadCaseInsensitiveBanner(t *testing.T) {
	in := "%%MatrixMarket MATRIX Coordinate Pattern General\n1 1 1\n1 1\n"
	if _, err := ReadGraph(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"badBanner":      "%%NotMM matrix coordinate pattern general\n1 1 1\n1 1\n",
		"array":          "%%MatrixMarket matrix array real general\n1 1\n",
		"symmetric":      "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 1\n",
		"complexField":   "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"noSize":         "%%MatrixMarket matrix coordinate pattern general\n% only comments\n",
		"badSize":        "%%MatrixMarket matrix coordinate pattern general\n1 1\n",
		"negativeSize":   "%%MatrixMarket matrix coordinate pattern general\n-1 1 0\n",
		"badRow":         "%%MatrixMarket matrix coordinate pattern general\n1 1 1\nx 1\n",
		"badCol":         "%%MatrixMarket matrix coordinate pattern general\n1 1 1\n1 y\n",
		"outOfRange":     "%%MatrixMarket matrix coordinate pattern general\n1 1 1\n2 1\n",
		"missingValue":   "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1\n",
		"badValue":       "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 z\n",
		"countMismatch":  "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n",
		"tooManyEntries": "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n2 2\n",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	src := gen.PowerLawBipartite(25, 30, 150, 0.7, 0.7, 5)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, src); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "%%MatrixMarket matrix coordinate pattern general") {
		t.Fatalf("bad banner: %q", out[:60])
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumV1() != src.NumV1() || back.NumV2() != src.NumV2() || !back.Equal(src) {
		t.Fatal("round trip differs")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.mtx")
	src := gen.CompleteBipartite(3, 2)
	if err := WriteFile(path, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(src) {
		t.Fatal("file round trip differs")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.mtx")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "dir", "g.mtx"), src); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestEmptyMatrix(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n0 0 0\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty matrix parsed wrong")
	}
}

// FuzzReadGraph checks the parser never panics and that anything it
// accepts round-trips through the writer to an equal graph.
func FuzzReadGraph(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 3\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n1 1 1\n9 9\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to write: %v", err)
		}
		back, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("writer output rejected: %v", err)
		}
		if !back.Equal(g) {
			t.Fatal("round trip changed graph")
		}
	})
}

// failWriter fails after n bytes.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errors.New("synthetic write failure")
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errors.New("synthetic write failure")
	}
	return n, nil
}

func TestWriteGraphWriterFailure(t *testing.T) {
	g := gen.CompleteBipartite(20, 20)
	for _, budget := range []int{0, 30, 200} {
		if err := WriteGraph(&failWriter{left: budget}, g); err == nil {
			t.Errorf("budget %d: write failure not propagated", budget)
		}
	}
}

type failReader struct {
	data string
	done bool
}

func (r *failReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, errors.New("synthetic read failure")
	}
	r.done = true
	return copy(p, r.data), nil
}

func TestReadGraphReaderFailure(t *testing.T) {
	if _, err := ReadGraph(&failReader{data: "%%MatrixMarket matrix coordinate pattern general\n9 9 9\n1 1\n"}); err == nil {
		t.Fatal("read failure not propagated")
	}
}
