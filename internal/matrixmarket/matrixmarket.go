// Package matrixmarket reads and writes bipartite graphs as
// MatrixMarket coordinate files — the exchange format of sparse-matrix
// collections (SuiteSparse, etc.), and the most common way biadjacency
// matrices circulate outside KONECT.
//
// Supported dialect: "%%MatrixMarket matrix coordinate
// <pattern|integer|real> general". Entries are 1-based (row ∈ V1,
// column ∈ V2); explicit values are accepted and any non-zero is an
// edge. Symmetric storage is rejected: a biadjacency matrix is
// rectangular and inherently general.
package matrixmarket

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"butterfly/internal/graph"
)

// Header is the parsed MatrixMarket banner plus size line.
type Header struct {
	Field    string // pattern | integer | real
	Rows     int
	Cols     int
	Entries  int64
	Comments []string
}

// ReadGraph parses a MatrixMarket coordinate file into a bipartite
// graph (rows = V1, columns = V2).
func ReadGraph(r io.Reader) (*graph.Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	h, err := readHeader(sc)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(h.Rows, h.Cols)
	var seen int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		minFields := 2
		if h.Field != "pattern" {
			minFields = 3
		}
		if len(fields) < minFields {
			return nil, fmt.Errorf("matrixmarket: entry %d: want ≥%d fields, got %d", lineNo, minFields, len(fields))
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: entry %d: bad row %q", lineNo, fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: entry %d: bad column %q", lineNo, fields[1])
		}
		if i < 1 || i > h.Rows || j < 1 || j > h.Cols {
			return nil, fmt.Errorf("matrixmarket: entry %d: (%d,%d) outside %dx%d", lineNo, i, j, h.Rows, h.Cols)
		}
		if h.Field != "pattern" {
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matrixmarket: entry %d: bad value %q", lineNo, fields[2])
			}
			if v == 0 {
				seen++ // explicit zero: counted in the header, not an edge
				continue
			}
		}
		b.AddEdge(i-1, j-1)
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("matrixmarket: read: %w", err)
	}
	if seen != h.Entries {
		return nil, fmt.Errorf("matrixmarket: header promises %d entries, file has %d", h.Entries, seen)
	}
	return b.Build(), nil
}

func readHeader(sc *bufio.Scanner) (Header, error) {
	var h Header
	if !sc.Scan() {
		return h, fmt.Errorf("matrixmarket: empty input")
	}
	banner := strings.Fields(strings.ToLower(strings.TrimSpace(sc.Text())))
	if len(banner) < 5 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" {
		return h, fmt.Errorf("matrixmarket: bad banner %q", sc.Text())
	}
	if banner[2] != "coordinate" {
		return h, fmt.Errorf("matrixmarket: unsupported format %q (only coordinate)", banner[2])
	}
	h.Field = banner[3]
	switch h.Field {
	case "pattern", "integer", "real":
	default:
		return h, fmt.Errorf("matrixmarket: unsupported field %q", h.Field)
	}
	if banner[4] != "general" {
		return h, fmt.Errorf("matrixmarket: unsupported symmetry %q (biadjacency is general)", banner[4])
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "%") {
			h.Comments = append(h.Comments, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return h, fmt.Errorf("matrixmarket: bad size line %q", line)
		}
		var err error
		if h.Rows, err = strconv.Atoi(fields[0]); err != nil || h.Rows < 0 {
			return h, fmt.Errorf("matrixmarket: bad row count %q", fields[0])
		}
		if h.Cols, err = strconv.Atoi(fields[1]); err != nil || h.Cols < 0 {
			return h, fmt.Errorf("matrixmarket: bad column count %q", fields[1])
		}
		if h.Entries, err = strconv.ParseInt(fields[2], 10, 64); err != nil || h.Entries < 0 {
			return h, fmt.Errorf("matrixmarket: bad entry count %q", fields[2])
		}
		return h, nil
	}
	return h, fmt.Errorf("matrixmarket: missing size line")
}

// WriteGraph emits g as a coordinate-pattern MatrixMarket file.
func WriteGraph(w io.Writer, g *graph.Bipartite) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n%% bipartite biadjacency\n%d %d %d\n",
		g.NumV1(), g.NumV2(), g.NumEdges()); err != nil {
		return fmt.Errorf("matrixmarket: write header: %w", err)
	}
	for u := 0; u < g.NumV1(); u++ {
		for _, v := range g.NeighborsOfV1(u) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u+1, int(v)+1); err != nil {
				return fmt.Errorf("matrixmarket: write entry: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("matrixmarket: flush: %w", err)
	}
	return nil
}

// ReadFile reads a MatrixMarket file from disk.
func ReadFile(path string) (*graph.Bipartite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("matrixmarket: %w", err)
	}
	defer f.Close()
	return ReadGraph(f)
}

// WriteFile writes g to the named file.
func WriteFile(path string, g *graph.Bipartite) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("matrixmarket: %w", err)
	}
	if err := WriteGraph(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("matrixmarket: close: %w", err)
	}
	return nil
}
