// Package dense implements small dense integer matrices and the exact
// linear-algebraic specification equations from the paper.
//
// The package exists as the executable "ground truth" for every
// loop-based algorithm in internal/core and internal/peel: equations (6),
// (7), (9), (19) and (25) of the paper are transcribed literally here
// (O(m²·n) and worse), and all production algorithms are tested for exact
// equality against them on small graphs.
//
// Matrices hold int64 entries in row-major order. All arithmetic is
// exact; the fractional coefficients of the paper's equations (¼, ½)
// always divide evenly for valid adjacency matrices, and the spec
// functions panic if they do not — that is a bug, not an input error.
package dense

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major int64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []int64 // len Rows*Cols
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("dense: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]int64, rows*cols)}
}

// NewFromRows builds a matrix from a slice of equal-length rows.
func NewFromRows(rows [][]int64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("dense: ragged row %d: len %d, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Ones returns the rows×cols all-ones matrix J.
func Ones(rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = 1
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns entry (i, j).
func (m *Matrix) At(i, j int) int64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set stores v at entry (i, j).
func (m *Matrix) Set(i, j int, v int64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether m and o have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if o.Data[i] != v {
			return false
		}
	}
	return true
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m·o. Panics on shape mismatch.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("dense: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	p := New(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		pi := p.Data[i*o.Cols : (i+1)*o.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			ok := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, okj := range ok {
				pi[j] += mik * okj
			}
		}
	}
	return p
}

// MulTranspose returns m·mᵀ (the paper's B = A·Aᵀ).
func (m *Matrix) MulTranspose() *Matrix { return m.Mul(m.Transpose()) }

// Hadamard returns the element-wise product m∘o.
func (m *Matrix) Hadamard(o *Matrix) *Matrix {
	m.mustMatch(o, "Hadamard")
	p := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		p.Data[i] = v * o.Data[i]
	}
	return p
}

// Add returns m+o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustMatch(o, "Add")
	p := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		p.Data[i] = v + o.Data[i]
	}
	return p
}

// Sub returns m−o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustMatch(o, "Sub")
	p := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		p.Data[i] = v - o.Data[i]
	}
	return p
}

// Scale returns c·m.
func (m *Matrix) Scale(c int64) *Matrix {
	p := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		p.Data[i] = c * v
	}
	return p
}

func (m *Matrix) mustMatch(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("dense: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Trace returns Γ(m) = Σᵢ m(i,i). Panics if m is not square.
func (m *Matrix) Trace() int64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("dense: Trace of non-square %dx%d", m.Rows, m.Cols))
	}
	var t int64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Diag returns the diagonal of a square matrix as a vector.
func (m *Matrix) Diag() []int64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("dense: Diag of non-square %dx%d", m.Rows, m.Cols))
	}
	d := make([]int64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		d[i] = m.Data[i*m.Cols+i]
	}
	return d
}

// SumAll returns Σᵢⱼ m(i,j).
func (m *Matrix) SumAll() int64 {
	var s int64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// RowSums returns the vector of per-row sums.
func (m *Matrix) RowSums() []int64 {
	s := make([]int64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s[i] += m.Data[i*m.Cols+j]
		}
	}
	return s
}

// ColSums returns the vector of per-column sums.
func (m *Matrix) ColSums() []int64 {
	s := make([]int64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s[j] += m.Data[i*m.Cols+j]
		}
	}
	return s
}

// SubMatrix returns the block m[r0:r1, c0:c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("dense: SubMatrix [%d:%d,%d:%d) out of range %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	s := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.Data[(i-r0)*s.Cols:(i-r0+1)*s.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return s
}

// IsBinary reports whether every entry is 0 or 1.
func (m *Matrix) IsBinary() bool {
	for _, v := range m.Data {
		if v != 0 && v != 1 {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < 16; i++ {
		for j := 0; j < m.Cols && j < 16; j++ {
			fmt.Fprintf(&sb, "%4d", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
