package dense

import "fmt"

// This file transcribes the specification equations of the paper
// literally, using dense arithmetic. Everything here is a test oracle —
// exact but intentionally naive.

func mustDiv(v, d int64, what string) int64 {
	if v%d != 0 {
		panic(fmt.Sprintf("dense: %s = %d not divisible by %d (invalid adjacency input?)", what, v, d))
	}
	return v / d
}

// SpecCount computes the total number of butterflies ΞG from the
// biadjacency matrix A using equation (7):
//
//	ΞG = ¼Γ(AAᵀAAᵀ) − ¼Γ(AAᵀ∘AAᵀ) − (¼Γ(JAAᵀ) − ¼Γ(AAᵀ))
//
// A must be a 0/1 matrix.
func SpecCount(a *Matrix) int64 {
	if !a.IsBinary() {
		panic("dense: SpecCount needs a binary matrix")
	}
	b := a.MulTranspose()                     // B = AAᵀ, m×m
	t1 := b.Mul(b).Trace()                    // Γ(BB) ; B symmetric so BBᵀ = BB
	t2 := b.Hadamard(b).Trace()               // Γ(B∘B)
	t3 := Ones(b.Rows, b.Rows).Mul(b).Trace() // Γ(JB)
	t4 := b.Trace()                           // Γ(B)
	return mustDiv(t1-t2-t3+t4, 4, "SpecCount numerator")
}

// SpecWedges computes the total number of wedges with distinct endpoints
// in V1 using equation (6): W = ½Γ(JBᵀ) − ½Γ(B).
func SpecWedges(a *Matrix) int64 {
	b := a.MulTranspose()
	t := Ones(b.Rows, b.Rows).Mul(b).Trace() - b.Trace()
	return mustDiv(t, 2, "SpecWedges numerator")
}

// SpecCountPartitionedCols computes ΞG via the column partitioning
// identity, equation (9), splitting A = (A_L | A_R) at column split.
// Used to validate that the partitioned postcondition matches (7).
func SpecCountPartitionedCols(a *Matrix, split int) int64 {
	al := a.SubMatrix(0, a.Rows, 0, split)
	ar := a.SubMatrix(0, a.Rows, split, a.Cols)
	bl := al.MulTranspose()
	br := ar.MulTranspose()
	j := Ones(a.Rows, a.Rows)

	num := bl.Mul(bl).Trace() + br.Mul(br).Trace() +
		2*bl.Mul(br).Trace() -
		bl.Hadamard(bl).Trace() - br.Hadamard(br).Trace() -
		2*bl.Hadamard(br).Trace() -
		j.Mul(bl).Trace() - j.Mul(br).Trace() +
		bl.Trace() + br.Trace()
	return mustDiv(num, 4, "SpecCountPartitionedCols numerator")
}

// SpecCountPartitionedRows computes ΞG via the row partitioning identity,
// equation (12), splitting A = (A_T / A_B) at row split. Note that a row
// partition of A is a column partition of Aᵀ, counting wedges whose
// endpoints lie in V2.
func SpecCountPartitionedRows(a *Matrix, split int) int64 {
	return SpecCountPartitionedCols(a.Transpose(), split)
}

// SpecVertexButterflies returns the per-vertex butterfly counts for V1
// (the vector s of equation (19)):
//
//	s = ½·DIAG(AAᵀAAᵀ − AAᵀ∘AAᵀ − JAAᵀ + AAᵀ)
//
// Erratum note: the paper writes a ¼ coefficient in (19). The i-th
// diagonal entry is Σ_{j≠i}(β_ij² − β_ij) = 2·Σ_{j≠i} C(β_ij, 2), i.e.
// exactly twice the number of butterflies vertex i belongs to, so the
// per-vertex coefficient is ½. The paper's ¼ is correct only for the
// aggregate ΞG = ¼·Γ(…) because each butterfly touches two V1 vertices.
// With ½ the invariant Σᵢ sᵢ = 2·ΞG holds, which is what a k-tip
// peeling requires ("every vertex in H is part of at least k
// butterflies").
func SpecVertexButterflies(a *Matrix) []int64 {
	b := a.MulTranspose()
	j := Ones(b.Rows, b.Rows)
	x := b.Mul(b).Sub(b.Hadamard(b)).Sub(j.Mul(b)).Add(b)
	d := x.Diag()
	out := make([]int64, len(d))
	for i, v := range d {
		out[i] = mustDiv(v, 2, "SpecVertexButterflies entry")
	}
	return out
}

// SpecVertexButterfliesV2 returns per-vertex butterfly counts for V2,
// obtained by applying (19) to Aᵀ.
func SpecVertexButterfliesV2(a *Matrix) []int64 {
	return SpecVertexButterflies(a.Transpose())
}

// SpecEdgeSupport returns the per-edge support matrix S_w of equation
// (25):
//
//	S_w = (AAᵀA − diag(AAᵀ)·1ᵀ − 1·diag(AᵀA)ᵀ + J) ∘ A
//
// Entry (i, j) is the number of butterflies containing edge (i, j); it is
// zero wherever A is zero.
func SpecEdgeSupport(a *Matrix) *Matrix {
	m, n := a.Rows, a.Cols
	aat := a.MulTranspose()         // m×m
	ata := a.Transpose().Mul(a)     // n×n
	core := a.MulTranspose().Mul(a) // AAᵀA, m×n

	s := New(m, n)
	dr := aat.Diag() // deg of each u ∈ V1
	dc := ata.Diag() // deg of each v ∈ V2
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if a.At(i, j) == 0 {
				continue
			}
			s.Set(i, j, core.At(i, j)-dr[i]-dc[j]+1)
		}
	}
	return s
}

// SpecKTip iterates equations (19)–(22) on a copy of A until no vertex is
// removed, returning the adjacency matrix of the k-tip subgraph with
// respect to V1. A zero row/column means the vertex was peeled.
func SpecKTip(a *Matrix, k int64) *Matrix {
	cur := a.Clone()
	for {
		s := SpecVertexButterflies(cur)
		removed := false
		for i, v := range s {
			if v >= k {
				continue
			}
			// Zero out row i only if it still has edges.
			for j := 0; j < cur.Cols; j++ {
				if cur.At(i, j) != 0 {
					cur.Set(i, j, 0)
					removed = true
				}
			}
		}
		if !removed {
			return cur
		}
	}
}

// SpecKWing iterates equations (25)–(27) on a copy of A until no edge is
// removed, returning the adjacency matrix of the k-wing subgraph.
func SpecKWing(a *Matrix, k int64) *Matrix {
	cur := a.Clone()
	for {
		s := SpecEdgeSupport(cur)
		removed := false
		for i := 0; i < cur.Rows; i++ {
			for j := 0; j < cur.Cols; j++ {
				if cur.At(i, j) != 0 && s.At(i, j) < k {
					cur.Set(i, j, 0)
					removed = true
				}
			}
		}
		if !removed {
			return cur
		}
	}
}

// SpecPathsLen4 returns Γ(BBᵀ) = the number of closed paths of length 4
// anchored at V1 (including degenerate ones), used in tests that verify
// the decomposition argument of Section II.
func SpecPathsLen4(a *Matrix) int64 {
	b := a.MulTranspose()
	return b.Mul(b).Trace()
}
