package dense

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteCount enumerates all (i<j, k<p) quadruples and counts complete
// 2×2 bicliques — the definition of a butterfly, independent of any
// algebra. O(m²n²); only for tiny matrices.
func bruteCount(a *Matrix) int64 {
	var c int64
	for i := 0; i < a.Rows; i++ {
		for j := i + 1; j < a.Rows; j++ {
			for k := 0; k < a.Cols; k++ {
				for p := k + 1; p < a.Cols; p++ {
					if a.At(i, k) != 0 && a.At(i, p) != 0 && a.At(j, k) != 0 && a.At(j, p) != 0 {
						c++
					}
				}
			}
		}
	}
	return c
}

// bruteWedges counts paths (i, k, j) with i<j in V1 directly.
func bruteWedges(a *Matrix) int64 {
	var c int64
	for i := 0; i < a.Rows; i++ {
		for j := i + 1; j < a.Rows; j++ {
			for k := 0; k < a.Cols; k++ {
				if a.At(i, k) != 0 && a.At(j, k) != 0 {
					c++
				}
			}
		}
	}
	return c
}

// bruteVertexButterflies counts, for each row vertex, the butterflies it
// participates in.
func bruteVertexButterflies(a *Matrix) []int64 {
	out := make([]int64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := i + 1; j < a.Rows; j++ {
			for k := 0; k < a.Cols; k++ {
				for p := k + 1; p < a.Cols; p++ {
					if a.At(i, k) != 0 && a.At(i, p) != 0 && a.At(j, k) != 0 && a.At(j, p) != 0 {
						out[i]++
						out[j]++
					}
				}
			}
		}
	}
	return out
}

// bruteEdgeSupport counts, for each edge, the butterflies containing it.
func bruteEdgeSupport(a *Matrix) *Matrix {
	s := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := i + 1; j < a.Rows; j++ {
			for k := 0; k < a.Cols; k++ {
				for p := k + 1; p < a.Cols; p++ {
					if a.At(i, k) != 0 && a.At(i, p) != 0 && a.At(j, k) != 0 && a.At(j, p) != 0 {
						s.Set(i, k, s.At(i, k)+1)
						s.Set(i, p, s.At(i, p)+1)
						s.Set(j, k, s.At(j, k)+1)
						s.Set(j, p, s.At(j, p)+1)
					}
				}
			}
		}
	}
	return s
}

// completeBipartite returns the biadjacency of K(a,b).
func completeBipartite(a, b int) *Matrix { return Ones(a, b) }

func binom2(x int64) int64 { return x * (x - 1) / 2 }

func TestSpecCountSingleButterfly(t *testing.T) {
	a := Ones(2, 2) // exactly one butterfly
	if got := SpecCount(a); got != 1 {
		t.Fatalf("SpecCount(K2,2) = %d, want 1", got)
	}
}

func TestSpecCountNoButterfly(t *testing.T) {
	cases := map[string]*Matrix{
		"empty":     New(3, 3),
		"star":      NewFromRows([][]int64{{1, 1, 1}}),
		"matching":  NewFromRows([][]int64{{1, 0}, {0, 1}}),
		"path4":     NewFromRows([][]int64{{1, 1, 0}, {0, 1, 1}}),
		"singleRow": Ones(1, 5),
		"singleCol": Ones(5, 1),
	}
	for name, a := range cases {
		if got := SpecCount(a); got != 0 {
			t.Errorf("%s: SpecCount = %d, want 0", name, got)
		}
	}
}

func TestSpecCountCompleteBipartite(t *testing.T) {
	// K(a,b) has C(a,2)·C(b,2) butterflies.
	for _, c := range []struct{ a, b int }{{2, 2}, {2, 3}, {3, 3}, {4, 5}, {6, 2}, {5, 5}} {
		a := completeBipartite(c.a, c.b)
		want := binom2(int64(c.a)) * binom2(int64(c.b))
		if got := SpecCount(a); got != want {
			t.Errorf("K(%d,%d): SpecCount = %d, want %d", c.a, c.b, got, want)
		}
	}
}

func TestSpecCountCycle8(t *testing.T) {
	// An 8-cycle in bipartite form: V1 = 4 vertices, V2 = 4 vertices,
	// each row vertex adjacent to two consecutive column vertices.
	a := NewFromRows([][]int64{
		{1, 1, 0, 0},
		{0, 1, 1, 0},
		{0, 0, 1, 1},
		{1, 0, 0, 1},
	})
	if got := SpecCount(a); got != 0 {
		t.Fatalf("C8: SpecCount = %d, want 0 (cycle has no butterfly)", got)
	}
	if got, want := SpecCount(Ones(2, 2)), bruteCount(Ones(2, 2)); got != want {
		t.Fatalf("sanity: %d vs brute %d", got, want)
	}
}

func TestSpecCountNonBinaryPanics(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("SpecCount on non-binary matrix did not panic")
		}
	}()
	SpecCount(m)
}

func TestQuickSpecCountMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(7) + 1
		n := rng.Intn(7) + 1
		a := randBinary(rng, m, n, 0.3+rng.Float64()*0.5)
		return SpecCount(a) == bruteCount(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpecWedgesMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(7)+1, rng.Intn(7)+1, 0.5)
		return SpecWedges(a) == bruteWedges(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Equation (9) must agree with equation (7) for every split point.
func TestQuickPartitionedColsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(6) + 2
		n := rng.Intn(6) + 2
		a := randBinary(rng, m, n, 0.5)
		want := SpecCount(a)
		for split := 0; split <= n; split++ {
			if SpecCountPartitionedCols(a, split) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Equation (12): row partitioning agrees too, for every split point.
func TestQuickPartitionedRowsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(6) + 2
		n := rng.Intn(6) + 2
		a := randBinary(rng, m, n, 0.5)
		want := SpecCount(a)
		for split := 0; split <= m; split++ {
			if SpecCountPartitionedRows(a, split) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Counting is symmetric in the bipartition: ΞG(A) == ΞG(Aᵀ).
func TestQuickCountTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(7)+1, rng.Intn(7)+1, 0.5)
		return SpecCount(a) == SpecCount(a.Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVertexButterfliesMatchBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(6)+1, rng.Intn(6)+1, 0.5)
		got := SpecVertexButterflies(a)
		want := bruteVertexButterflies(a)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Σ per-vertex counts (V1 side) = 2·ΞG: every butterfly touches exactly
// two V1 vertices.
func TestQuickVertexButterfliesSumIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(7)+1, rng.Intn(7)+1, 0.5)
		var sum int64
		for _, v := range SpecVertexButterflies(a) {
			sum += v
		}
		return sum == 2*SpecCount(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeSupportMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(6)+1, rng.Intn(6)+1, 0.5)
		return SpecEdgeSupport(a).Equal(bruteEdgeSupport(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Σ edge supports = 4·ΞG: every butterfly has exactly four edges.
func TestQuickEdgeSupportSumIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(7)+1, rng.Intn(7)+1, 0.5)
		return SpecEdgeSupport(a).SumAll() == 4*SpecCount(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecKTipCompleteBipartite(t *testing.T) {
	// In K(3,3) every V1 vertex is in C(2,2)... actually each vertex of V1
	// is in C(2,1)·C(3,2) = binom2(3)*... compute: per-vertex count is
	// (a-1 choose 1 pairs) — just take it from the spec: all vertices have
	// the same count s, so the s-tip is the whole graph and the (s+1)-tip
	// is empty.
	a := completeBipartite(3, 3)
	s := SpecVertexButterflies(a)[0]
	if s <= 0 {
		t.Fatalf("expected positive per-vertex count, got %d", s)
	}
	whole := SpecKTip(a, s)
	if !whole.Equal(a) {
		t.Fatal("s-tip of K(3,3) should be the whole graph")
	}
	empty := SpecKTip(a, s+1)
	if empty.SumAll() != 0 {
		t.Fatal("(s+1)-tip of K(3,3) should be empty")
	}
}

func TestSpecKTipZeroKeepsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randBinary(rng, 6, 6, 0.4)
	if !SpecKTip(a, 0).Equal(a) {
		t.Fatal("0-tip must keep the whole graph")
	}
}

func TestSpecKWingCompleteBipartite(t *testing.T) {
	a := completeBipartite(3, 4)
	s := SpecEdgeSupport(a).At(0, 0)
	if s <= 0 {
		t.Fatal("expected positive edge support")
	}
	if !SpecKWing(a, s).Equal(a) {
		t.Fatal("s-wing of complete bipartite should be whole graph")
	}
	if SpecKWing(a, s+1).SumAll() != 0 {
		t.Fatal("(s+1)-wing should be empty")
	}
}

// Monotone nesting: the (k+1)-wing is a subgraph of the k-wing.
func TestQuickKWingNesting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(5)+2, rng.Intn(5)+2, 0.6)
		prev := SpecKWing(a, 0)
		for k := int64(1); k <= 3; k++ {
			next := SpecKWing(a, k)
			for i := range next.Data {
				if next.Data[i] != 0 && prev.Data[i] == 0 {
					return false
				}
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Monotone nesting for tips.
func TestQuickKTipNesting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(5)+2, rng.Intn(5)+2, 0.6)
		prev := SpecKTip(a, 0)
		for k := int64(1); k <= 3; k++ {
			next := SpecKTip(a, k)
			for i := range next.Data {
				if next.Data[i] != 0 && prev.Data[i] == 0 {
					return false
				}
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Section II decomposition: Γ(BBᵀ) = 4·ΞG + Γ(B∘B) + 2·W, i.e. closed
// 4-paths split into butterflies (4 traversals each... the paper's ¼
// accounting), two-line paths, and repeated wedges (2 traversals each).
func TestQuickClosedPathDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(7)+1, rng.Intn(7)+1, 0.5)
		b := a.MulTranspose()
		lhs := SpecPathsLen4(a)
		rhs := 4*SpecCount(a) + b.Hadamard(b).Trace() + 2*SpecWedges(a)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecVertexButterfliesV2(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randBinary(rng, 6, 5, 0.5)
	got := SpecVertexButterfliesV2(a)
	want := bruteVertexButterflies(a.Transpose())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("V2 vertex %d: %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMustDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	mustDiv(3, 2, "test")
}
