package dense

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randBinary(rng *rand.Rand, m, n int, density float64) *Matrix {
	a := New(m, n)
	for i := range a.Data {
		if rng.Float64() < density {
			a.Data[i] = 1
		}
	}
	return a
}

func TestNewAndAtSet(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Fatalf("At(2,3) = %d, want 7", m.At(2, 3))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("fresh matrix not zeroed")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]int64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("NewFromRows layout wrong")
	}
	if got := NewFromRows(nil); got.Rows != 0 || got.Cols != 0 {
		t.Fatal("NewFromRows(nil) not empty")
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged NewFromRows did not panic")
		}
	}()
	NewFromRows([][]int64{{1, 2}, {3}})
}

func TestOnesIdentity(t *testing.T) {
	j := Ones(2, 3)
	if j.SumAll() != 6 {
		t.Fatalf("Ones sum = %d, want 6", j.SumAll())
	}
	i3 := Identity(3)
	if i3.Trace() != 3 || i3.SumAll() != 3 {
		t.Fatal("Identity wrong")
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFromRows([][]int64{{1, 2}, {3, 4}})
	b := NewFromRows([][]int64{{5, 6}, {7, 8}})
	p := a.Mul(b)
	want := NewFromRows([][]int64{{19, 22}, {43, 50}})
	if !p.Equal(want) {
		t.Fatalf("Mul = %v, want %v", p, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randBinary(rng, 4, 4, 0.5)
	if !a.Mul(Identity(4)).Equal(a) || !Identity(4).Mul(a).Equal(a) {
		t.Fatal("multiplying by identity changed matrix")
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul shape mismatch did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulTransposeSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randBinary(rng, 5, 7, 0.4)
	b := a.MulTranspose()
	if b.Rows != 5 || b.Cols != 5 {
		t.Fatalf("MulTranspose shape %dx%d", b.Rows, b.Cols)
	}
	if !b.Equal(b.Transpose()) {
		t.Fatal("AAᵀ not symmetric")
	}
}

func TestHadamardAddSubScale(t *testing.T) {
	a := NewFromRows([][]int64{{1, 2}, {3, 4}})
	b := NewFromRows([][]int64{{2, 0}, {1, 2}})
	if !a.Hadamard(b).Equal(NewFromRows([][]int64{{2, 0}, {3, 8}})) {
		t.Fatal("Hadamard wrong")
	}
	if !a.Add(b).Equal(NewFromRows([][]int64{{3, 2}, {4, 6}})) {
		t.Fatal("Add wrong")
	}
	if !a.Sub(b).Equal(NewFromRows([][]int64{{-1, 2}, {2, 2}})) {
		t.Fatal("Sub wrong")
	}
	if !a.Scale(3).Equal(NewFromRows([][]int64{{3, 6}, {9, 12}})) {
		t.Fatal("Scale wrong")
	}
}

func TestTraceDiag(t *testing.T) {
	m := NewFromRows([][]int64{{1, 9}, {9, 2}})
	if m.Trace() != 3 {
		t.Fatalf("Trace = %d", m.Trace())
	}
	d := m.Diag()
	if len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Fatalf("Diag = %v", d)
	}
}

func TestTraceNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Trace of non-square did not panic")
		}
	}()
	New(2, 3).Trace()
}

func TestRowColSums(t *testing.T) {
	m := NewFromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	rs := m.RowSums()
	cs := m.ColSums()
	if rs[0] != 6 || rs[1] != 15 {
		t.Fatalf("RowSums = %v", rs)
	}
	if cs[0] != 5 || cs[1] != 7 || cs[2] != 9 {
		t.Fatalf("ColSums = %v", cs)
	}
}

func TestSubMatrix(t *testing.T) {
	m := NewFromRows([][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.SubMatrix(1, 3, 0, 2)
	want := NewFromRows([][]int64{{4, 5}, {7, 8}})
	if !s.Equal(want) {
		t.Fatalf("SubMatrix = %v", s)
	}
	empty := m.SubMatrix(1, 1, 0, 3)
	if empty.Rows != 0 || empty.Cols != 3 {
		t.Fatal("empty SubMatrix shape wrong")
	}
}

func TestIsBinary(t *testing.T) {
	if !Ones(2, 2).IsBinary() || !New(2, 2).IsBinary() {
		t.Fatal("binary matrices misclassified")
	}
	m := New(1, 1)
	m.Set(0, 0, 2)
	if m.IsBinary() {
		t.Fatal("non-binary matrix classified binary")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Ones(2, 2)
	b := a.Clone()
	b.Set(0, 0, 5)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

// Property: trace rotation invariance Γ(XY) = Γ(YX) for random binary
// matrices — the identity the paper's derivation leans on.
func TestQuickTraceRotation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(6) + 1
		n := rng.Intn(6) + 1
		x := randBinary(rng, m, n, 0.5)
		y := randBinary(rng, n, m, 0.5)
		return x.Mul(y).Trace() == y.Mul(x).Trace()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Σᵢⱼ(X∘Y) = Γ(XYᵀ), equation (3) of the paper.
func TestQuickHadamardTraceIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(6) + 1
		n := rng.Intn(6) + 1
		x := randBinary(rng, m, n, 0.5)
		y := randBinary(rng, m, n, 0.5)
		return x.Hadamard(y).SumAll() == x.Mul(y.Transpose()).Trace()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestQuickTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(5) + 1
		k := rng.Intn(5) + 1
		n := rng.Intn(5) + 1
		a := randBinary(rng, m, k, 0.5)
		b := randBinary(rng, k, n, 0.5)
		return a.Mul(b).Transpose().Equal(b.Transpose().Mul(a.Transpose()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes compare equal")
	}
	a := Ones(2, 2)
	b := Ones(2, 2)
	if !a.Equal(b) {
		t.Fatal("equal matrices compare unequal")
	}
	b.Set(1, 1, 5)
	if a.Equal(b) {
		t.Fatal("different values compare equal")
	}
}

func TestMustMatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Hadamard": func() { Ones(2, 2).Hadamard(Ones(2, 3)) },
		"Add":      func() { Ones(2, 2).Add(Ones(3, 2)) },
		"Sub":      func() { Ones(1, 2).Sub(Ones(2, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDiagNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 3).Diag()
}

func TestSubMatrixOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 2).SubMatrix(0, 3, 0, 1)
}

func TestStringRendering(t *testing.T) {
	small := NewFromRows([][]int64{{1, 2}, {3, 4}})
	s := small.String()
	if !strings.Contains(s, "2x2") || !strings.Contains(s, "   4") {
		t.Fatalf("String = %q", s)
	}
	big := Ones(20, 20)
	if len(big.String()) == 0 {
		t.Fatal("big String empty")
	}
}
