package flight

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesce: N concurrent callers on one key run fn exactly once,
// every caller observes the leader's exact value, and exactly one
// caller reports joined == false.
func TestCoalesce(t *testing.T) {
	var g Group[int]
	var execs atomic.Int32
	gate := make(chan struct{})
	entered := make(chan struct{})

	const n = 64
	results := make([]int, n)
	joins := make([]bool, n)
	var wg sync.WaitGroup

	// The leader parks inside fn until every follower had a chance to
	// arrive; followers must join the same flight rather than execute.
	leaderReady := make(chan struct{})
	go func() {
		results[0], joins[0] = g.Do("k", func() int {
			close(entered)
			<-gate
			return int(execs.Add(1)) * 100
		})
		close(leaderReady)
	}()
	<-entered

	arrived := make(chan struct{}, n)
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			results[i], joins[i] = g.Do("k", func() int {
				return int(execs.Add(1)) * 100
			})
		}(i)
	}
	// Every follower has signalled it is about to call Do; wait until
	// the group itself reports the whole herd parked on the flight
	// before the leader is allowed to finish. A straggler that somehow
	// arrived after completion would re-execute fn and fail the
	// exactly-once assertion below, so the test cannot pass vacuously.
	for i := 1; i < n; i++ {
		<-arrived
	}
	for g.Waiting("k") < n {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	<-leaderReady

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if results[i] != 100 {
			t.Fatalf("caller %d got %d, want 100", i, results[i])
		}
		if !joins[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers report leading, want exactly 1", leaders)
	}
	if got := g.Waiting("k"); got != 0 {
		t.Fatalf("Waiting after completion = %d, want 0", got)
	}
}

// TestSequentialReExecutes: a caller arriving after the previous
// flight completed starts a fresh execution — the group never serves
// stale results.
func TestSequentialReExecutes(t *testing.T) {
	var g Group[int]
	n := 0
	for i := 1; i <= 3; i++ {
		v, joined := g.Do("k", func() int { n++; return n })
		if joined {
			t.Fatalf("sequential call %d reported joined", i)
		}
		if v != i {
			t.Fatalf("sequential call %d got %d, want %d", i, v, i)
		}
	}
}

// TestDistinctKeysIndependent: different keys never coalesce.
func TestDistinctKeysIndependent(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	var execs atomic.Int32
	gate := make(chan struct{})
	entered := make(chan struct{}, 2)
	for _, key := range []string{"a", "b"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			v, joined := g.Do(key, func() string {
				execs.Add(1)
				entered <- struct{}{}
				<-gate
				return key
			})
			if joined || v != key {
				t.Errorf("key %q: v=%q joined=%v", key, v, joined)
			}
		}(key)
	}
	<-entered
	<-entered // both leaders running concurrently: no coalescing across keys
	if got := g.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	close(gate)
	wg.Wait()
	if got := execs.Load(); got != 2 {
		t.Fatalf("fn executed %d times, want 2", got)
	}
}

// TestZeroValueReady: the zero Group works without construction.
func TestZeroValueReady(t *testing.T) {
	var g Group[struct{ n int }]
	v, joined := g.Do("k", func() struct{ n int } { return struct{ n int }{7} })
	if joined || v.n != 7 {
		t.Fatalf("zero-value Do = (%+v, %v)", v, joined)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight after completion = %d, want 0", g.InFlight())
	}
}
