// Package flight deduplicates concurrent identical work — the
// singleflight pattern, hand-rolled since the repo is stdlib-only.
//
// The first caller for a key becomes the leader: it runs fn outside
// the group lock and publishes the result. Callers that arrive while
// the leader is still running join the flight and block until the
// leader finishes, then observe the leader's exact result. The key is
// removed before the result is published, so a caller that arrives
// after completion starts a fresh flight rather than reading a stale
// one — the group only coalesces work that is genuinely in progress.
//
// Correctness therefore depends on the key: it must pin every input
// the result depends on (the cluster keys gathers by graph name plus
// partial-cache generation; the serve layer keys kernel executions by
// the full result-cache key — api surface, graph, version, normalized
// query). Two requests with the same key must be answerable by the
// same bytes.
package flight

import "sync"

// call is one in-progress flight and its eventual result.
type call[T any] struct {
	done     chan struct{}
	val      T
	arrivals int // leader + followers currently in this flight
}

// Group coalesces concurrent calls per key. The zero value is ready
// to use.
type Group[T any] struct {
	mu sync.Mutex
	m  map[string]*call[T]
}

// Do returns fn's result for key, joining an identical in-progress
// call instead of starting a second one. joined reports whether this
// caller shared another flight's work. fn runs outside the group
// lock, on the leader's goroutine — if the leader must survive its
// own caller's cancellation, detach the context before calling Do.
func (g *Group[T]) Do(key string, fn func() T) (val T, joined bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call[T])
	}
	if c, ok := g.m[key]; ok {
		c.arrivals++
		g.mu.Unlock()
		<-c.done
		return c.val, true
	}
	c := &call[T]{done: make(chan struct{}), arrivals: 1}
	g.m[key] = c
	g.mu.Unlock()

	c.val = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false
}

// InFlight reports the number of keys with a leader currently
// running. Intended for metrics and tests.
func (g *Group[T]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// Waiting reports how many callers (leader included) are currently in
// the flight for key; 0 once the flight completes. Intended for tests
// that need to observe a herd fully assembled before releasing it.
func (g *Group[T]) Waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.arrivals
	}
	return 0
}
