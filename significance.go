package butterfly

import (
	"fmt"
	"math"

	"butterfly/internal/core"
	"butterfly/internal/gen"
)

// Rewired returns a degree-preserving randomization of the graph
// (Maslov–Sneppen double edge swaps): both degree sequences are kept
// exactly while the wiring is shuffled — a sample from the
// configuration null model.
func (g *Graph) Rewired(swaps int, seed int64) (*Graph, error) {
	if swaps < 0 {
		return nil, fmt.Errorf("butterfly: negative swap count %d", swaps)
	}
	return &Graph{g: gen.Rewire(g.g, swaps, seed)}, nil
}

// SignificanceOptions configures ButterflySignificance.
type SignificanceOptions struct {
	// Samples is the number of null-model graphs to draw (≥ 2).
	Samples int
	// SwapsPerEdge scales the mixing length: each sample applies
	// SwapsPerEdge·|E| successful swaps. 0 defaults to 10.
	SwapsPerEdge int
	Seed         int64
}

// Significance reports how a graph's butterfly count compares with its
// degree-preserving null model.
type Significance struct {
	Observed int64   // ΞG of the input graph
	NullMean float64 // mean ΞG over rewired samples
	NullStd  float64 // sample standard deviation
	ZScore   float64 // (Observed − NullMean) / NullStd; ±Inf when NullStd = 0 and Observed differs
	Samples  int
}

// ButterflySignificance answers "is this graph's butterfly count
// explained by its degree sequences alone?": it draws degree-preserving
// rewirings, counts each, and reports the z-score of the observed
// count against that null distribution. Large positive z means the
// wiring itself (not just hubs) concentrates butterflies — the usual
// signature of community structure or coordinated behaviour.
func (g *Graph) ButterflySignificance(opts SignificanceOptions) (Significance, error) {
	if opts.Samples < 2 {
		return Significance{}, fmt.Errorf("butterfly: need at least 2 null samples, got %d", opts.Samples)
	}
	spe := opts.SwapsPerEdge
	if spe == 0 {
		spe = 10
	}
	if spe < 0 {
		return Significance{}, fmt.Errorf("butterfly: negative SwapsPerEdge %d", spe)
	}
	swaps := int(g.NumEdges()) * spe

	counts := make([]float64, opts.Samples)
	var sum float64
	for i := range counts {
		null := gen.Rewire(g.g, swaps, opts.Seed+int64(i)*7919)
		counts[i] = float64(core.CountAuto(null))
		sum += counts[i]
	}
	mean := sum / float64(opts.Samples)
	var ss float64
	for _, c := range counts {
		d := c - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(opts.Samples-1))

	res := Significance{
		Observed: g.Count(), NullMean: mean, NullStd: std, Samples: opts.Samples,
	}
	switch {
	case std > 0:
		res.ZScore = (float64(res.Observed) - mean) / std
	case float64(res.Observed) > mean:
		res.ZScore = math.Inf(1)
	case float64(res.Observed) < mean:
		res.ZScore = math.Inf(-1)
	}
	return res, nil
}
