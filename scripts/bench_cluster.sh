#!/usr/bin/env bash
# Router-mode vs single-node serving benchmark. Boots a single-node
# bfserved, measures bfload throughput on two stand-in graphs, then
# boots 2 shards + a router and measures the same workloads through
# the router — both proxied (unpartitioned) and scatter-gathered
# (partitions=2) — and writes BENCH_PR9.json combining the numbers
# with the router's per-shard distribution stats and the partitioned
# fast path's partial-cache / coalescing counters.
#
# Usage: scripts/bench_cluster.sh [out.json]   (default BENCH_PR9.json)
set -euo pipefail

OUT="${1:-BENCH_PR9.json}"
SINGLE="${SINGLE:-127.0.0.1:18085}"
ROUTER="${ROUTER:-127.0.0.1:18086}"
SHARD1="${SHARD1:-127.0.0.1:18087}"
SHARD2="${SHARD2:-127.0.0.1:18088}"
N="${N:-2000}"
C="${C:-8}"
MIX="${MIX:-count=3,estimate=1}"
TMP="$(mktemp -d)"

cleanup() {
  for pid in "${SV:-0}" "${S1:-0}" "${S2:-0}" "${RT:-0}"; do
    [ "$pid" -gt 0 ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/bfserved" ./cmd/bfserved
go build -o "$TMP/bfload" ./cmd/bfload

wait_ready() {
  for _ in $(seq 1 100); do
    curl -sf "http://$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "daemon at $1 never became ready" >&2
  return 1
}

GRAPHS="github occupations"
SCALE=50

echo "== single-node baseline"
"$TMP/bfserved" -addr "$SINGLE" &
SV=$!
wait_ready "$SINGLE"
for g in $GRAPHS; do
  "$TMP/bfload" -addr "$SINGLE" -graph "$g" -dataset "$g" -scale $SCALE \
    -n "$N" -c "$C" -mix "$MIX" -json "$TMP/single_$g.json" >/dev/null
  echo "   $g: $(grep -o '"throughput_rps": [0-9.]*' "$TMP/single_$g.json")"
done
kill -TERM "$SV" && wait "$SV" && SV=0

echo "== router + 2 shards"
"$TMP/bfserved" -addr "$SHARD1" -role shard &
S1=$!
"$TMP/bfserved" -addr "$SHARD2" -role shard &
S2=$!
wait_ready "$SHARD1"
wait_ready "$SHARD2"
"$TMP/bfserved" -addr "$ROUTER" -role router -shards "http://$SHARD1,http://$SHARD2" &
RT=$!
wait_ready "$ROUTER"

for g in $GRAPHS; do
  "$TMP/bfload" -addr "$ROUTER" -graph "$g" -dataset "$g" -scale $SCALE \
    -n "$N" -c "$C" -mix "$MIX" -cluster "http://$SHARD1,http://$SHARD2" \
    -json "$TMP/router_$g.json" >/dev/null
  echo "   $g (proxied): $(grep -o '"throughput_rps": [0-9.]*' "$TMP/router_$g.json")"
  "$TMP/bfload" -addr "$ROUTER" -graph "${g}_p2" -dataset "$g" -scale $SCALE \
    -partitions 2 -n "$N" -c "$C" -mix "$MIX" -cluster "http://$SHARD1,http://$SHARD2" \
    -json "$TMP/partitioned_$g.json" >/dev/null
  echo "   $g (partitions=2): $(grep -o '"throughput_rps": [0-9.]*' "$TMP/partitioned_$g.json")"
done

kill -TERM "$RT" "$S1" "$S2"
wait "$RT" "$S1" "$S2"
RT=0 S1=0 S2=0

TMPDIR_FOR_PY="$TMP" N_FOR_PY="$N" C_FOR_PY="$C" MIX_FOR_PY="$MIX" OUT_FOR_PY="$OUT" \
python3 - <<'EOF'
import json, os

tmp = os.environ["TMPDIR_FOR_PY"]
out = {
    "schema": "bench_cluster/v2",
    "requests": int(os.environ["N_FOR_PY"]),
    "concurrency": int(os.environ["C_FOR_PY"]),
    "mix": os.environ["MIX_FOR_PY"],
    "scale": 50,
    "topology": {"single": "1 node", "router": "1 router + 2 shards"},
    "graphs": [],
}
for g in ["github", "occupations"]:
    single = json.load(open(f"{tmp}/single_{g}.json"))
    router = json.load(open(f"{tmp}/router_{g}.json"))
    parts = json.load(open(f"{tmp}/partitioned_{g}.json"))
    row = {
        "graph": g,
        "single_node_rps": round(single["throughput_rps"], 1),
        "router_rps": round(router["throughput_rps"], 1),
        "router_partitioned_rps": round(parts["throughput_rps"], 1),
        "router_vs_single": round(router["throughput_rps"] / single["throughput_rps"], 3),
        "single_p99_ms": single["latency_ms"]["p99"],
        "router_p99_ms": router["latency_ms"]["p99"],
        "partitioned_p99_ms": parts["latency_ms"]["p99"],
        "proxied_cluster": router.get("cluster"),
        "partitioned_cluster": parts.get("cluster"),
    }
    pr = (parts.get("cluster") or {}).get("router")
    if pr:
        row["partial_cache_hit_rate"] = pr["partial_cache_hit_rate"]
        row["coalesced_rate"] = pr["coalesced_rate"]
    out["graphs"].append(row)
with open(os.environ["OUT_FOR_PY"], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT_FOR_PY']}")
for row in out["graphs"]:
    print(f'  {row["graph"]}: single {row["single_node_rps"]} rps, '
          f'router {row["router_rps"]} rps ({row["router_vs_single"]}x), '
          f'partitioned {row["router_partitioned_rps"]} rps')
EOF
