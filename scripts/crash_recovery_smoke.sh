#!/usr/bin/env bash
# Crash-recovery smoke: boot a durable bfserved, register + mutate a
# graph, kill the daemon with SIGKILL (no drain, no checkpoint), boot a
# second daemon over the same -data-dir, and require it to serve the
# exact same (version, butterflies) it acked before dying.
#
# Used by `make crash-smoke` and the CI store-recovery job. Needs only
# curl + standard shell tools.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18081}"
DIR="$(mktemp -d)"
BIN="${BFSERVED:-./bfserved}"
cleanup() {
  if [ -n "${SERVER:-}" ] && [ "${SERVER:-0}" -gt 0 ]; then
    kill -9 "$SERVER" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

if [ ! -x "$BIN" ]; then
  go build -o bfserved ./cmd/bfserved
  BIN=./bfserved
fi

wait_ready() {
  for _ in $(seq 1 100); do
    curl -sf "http://$ADDR/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "bfserved never became ready" >&2
  return 1
}

# jq when available, portable sed fallback otherwise.
field() { # field <json> <name>
  if command -v jq >/dev/null 2>&1; then
    printf '%s' "$1" | jq -r ".$2"
  else
    printf '%s' "$1" | sed -E "s/.*\"$2\":([0-9]+).*/\1/"
  fi
}

echo "== first life (data dir $DIR)"
"$BIN" -addr "$ADDR" -data-dir "$DIR" -fsync always -preload occupations@50 &
SERVER=$!
wait_ready

curl -sf -X POST "http://$ADDR/graphs" \
  -d '{"name":"crash","m":4,"n":4,"edges":[[0,0],[0,1],[0,2],[1,0],[1,1],[1,2],[2,0],[2,1],[2,2],[3,3]]}' >/dev/null
curl -sf -X POST "http://$ADDR/graphs/crash/mutate" \
  -d '{"inserts":[[3,0],[3,1]],"deletes":[[2,2]]}' >/dev/null
curl -sf -X POST "http://$ADDR/graphs/occupations/mutate" \
  -d '{"deletes":[[0,0],[1,1],[2,2]]}' >/dev/null

BEFORE_CRASH=$(curl -sf "http://$ADDR/graphs/crash")
BEFORE_OCC=$(curl -sf "http://$ADDR/graphs/occupations")
echo "   crash:       $BEFORE_CRASH"
echo "   occupations: $BEFORE_OCC"

echo "== kill -9"
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true

echo "== second life"
# Same -preload on purpose: the recovered (mutated) graph must win.
"$BIN" -addr "$ADDR" -data-dir "$DIR" -fsync always -preload occupations@50 &
SERVER=$!
wait_ready

AFTER_CRASH=$(curl -sf "http://$ADDR/graphs/crash")
AFTER_OCC=$(curl -sf "http://$ADDR/graphs/occupations")
echo "   crash:       $AFTER_CRASH"
echo "   occupations: $AFTER_OCC"

fail=0
for name in crash occupations; do
  if [ "$name" = crash ]; then before=$BEFORE_CRASH after=$AFTER_CRASH; else before=$BEFORE_OCC after=$AFTER_OCC; fi
  for f in version butterflies edges; do
    b=$(field "$before" "$f"); a=$(field "$after" "$f")
    if [ "$b" != "$a" ]; then
      echo "FAIL: $name.$f changed across kill -9: $b -> $a" >&2
      fail=1
    fi
  done
done

# A fresh exact count over the recovered graph must agree with the
# stamped butterfly count.
COUNT=$(curl -sf -X POST "http://$ADDR/graphs/crash/count" -d '{"threads":-1}')
if [ "$(field "$COUNT" butterflies)" != "$(field "$AFTER_CRASH" butterflies)" ]; then
  echo "FAIL: recount $(field "$COUNT" butterflies) != recovered stamp $(field "$AFTER_CRASH" butterflies)" >&2
  fail=1
fi

kill -TERM "$SERVER"
wait "$SERVER"
SERVER=0

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "OK: kill -9 recovery serves identical state"
