#!/usr/bin/env bash
# QoS fairness smoke: boot bfserved with two tenants — fast (weight 4)
# and slow (weight 1) — cache off so every request is a real kernel
# run, then prove the two acceptance properties of the admission
# scheduler end to end:
#
#   1. Weighted fairness: both tenants offer identical saturating load
#      in the same lane; the scheduler's grant ratio must track the
#      configured 4:1 weights (tolerance below).
#   2. Lane isolation: a batch-lane flood must not destroy interactive
#      latency — the interactive tenant's p99 under flood must stay
#      within 2x its solo baseline.
#
# Load shape notes (calibrated on the CI graph): butterfly kernels are
# fast, so saturating admission from a closed-loop client needs a
# deliberately slow server — github@2 vertex-counts run ~75 ms, and
# -max-inflight 1 makes drain ~13 req/s while shed 429s resolve in
# ~1 ms, keeping every tenant queue backlogged (the regime where the
# WRR split is exact). Fairness is judged on the server's
# bfserved_tenant_admitted_total deltas — the scheduler's own grants —
# because client-side 200s also count coalesced followers, which
# deliberately ride other tenants' kernel runs.
#
# Emits the measurements as BENCH_PR10.json (or $OUT). Used by
# `make qos-smoke` and the CI qos-smoke job; the committed
# BENCH_PR10.json is checked against the same thresholds in CI.
# Needs curl + python3 + standard shell tools.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18095}"
OUT="${OUT:-BENCH_PR10.json}"
BIN="${BFSERVED:-./bfserved}"
LOAD="${BFLOAD:-./bfload}"
WORK="$(mktemp -d)"

MIX="vertex=1"
N="${N:-30000}"      # fairness / flood phases (mostly 429s; ~30 s each)
SOLO_N="${SOLO_N:-240}"

cleanup() {
  [ "${SERVER:-0}" -gt 0 ] && kill -9 "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

if [ ! -x "$BIN" ]; then
  go build -o bfserved ./cmd/bfserved
  BIN=./bfserved
fi
if [ ! -x "$LOAD" ]; then
  go build -o bfload ./cmd/bfload
  LOAD=./bfload
fi

cat >"$WORK/tenants.json" <<'EOF'
{
  "default": {"weight": 1},
  "tenants": {
    "fast": {"weight": 4, "slo_ms": 250},
    "slow": {"weight": 1, "slo_ms": 250}
  }
}
EOF

echo "== boot bfserved (github@2, cache off, max-inflight 1, queue 8, fast:4 / slow:1)"
"$BIN" -addr "$ADDR" -preload github@2 -cache 0 \
  -max-inflight 1 -queue 8 -tenants "$WORK/tenants.json" &
SERVER=$!
for _ in $(seq 1 150); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

admitted() { # admitted <tenant> — scheduler grants so far, 0 if unseen
  local v
  v=$(curl -s "http://$ADDR/metrics" |
    awk -v t="tenant=\"$1\"" '/^bfserved_tenant_admitted_total/ && $0 ~ t {print $2}')
  echo "${v:-0}"
}

tenant_field() { # tenant_field <report.json> <tenant> <field>
  python3 - "$1" "$2" "$3" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
print(rep["tenants"][sys.argv[2]][sys.argv[3]])
PY
}

echo "== solo baseline: interactive tenant alone at its flood-run concurrency"
"$LOAD" -addr "http://$ADDR" -graph github -no-register \
  -n "$SOLO_N" -c 4 -mix "$MIX" -unique \
  -tenant-mix fast:interactive:1 -json "$WORK/solo.json" >/dev/null
SOLO_P99=$(tenant_field "$WORK/solo.json" fast p99_ms)
echo "   solo interactive p99 = ${SOLO_P99}ms"

echo "== fairness: equal offered load, server weights 4:1"
FAST0=$(admitted fast)
SLOW0=$(admitted slow)
"$LOAD" -addr "http://$ADDR" -graph github -no-register \
  -n "$N" -c 32 -mix "$MIX" -unique \
  -tenant-mix fast:interactive:1,slow:interactive:1 -json "$WORK/fair.json" >/dev/null
FAST_OK=$(( $(admitted fast) - FAST0 ))
SLOW_OK=$(( $(admitted slow) - SLOW0 ))
echo "   scheduler grants: fast=$FAST_OK slow=$SLOW_OK"

echo "== lane isolation: interactive probe under a batch flood"
# The flood is a separate background bfload so the interactive probe
# keeps exactly the solo run's closed-loop shape (4 dedicated
# workers). -allow-5xx: starved batch waiters time out with 504 by
# design here — interactive holds the slot; -timeout-ms bounds how
# long they pin a closed-loop worker before cycling.
"$LOAD" -addr "http://$ADDR" -graph github -no-register \
  -n "$N" -c 32 -mix "$MIX" -unique -timeout-ms 8000 -allow-5xx \
  -tenant-mix slow:batch:1 -json "$WORK/floodbg.json" >/dev/null &
FLOOD=$!
sleep 3
"$LOAD" -addr "http://$ADDR" -graph github -no-register \
  -n "$SOLO_N" -c 4 -mix "$MIX" -unique \
  -tenant-mix fast:interactive:1 -json "$WORK/flood.json" >/dev/null
kill "$FLOOD" 2>/dev/null || true
wait "$FLOOD" 2>/dev/null || true
FLOOD_P99=$(tenant_field "$WORK/flood.json" fast p99_ms)
echo "   interactive p99 under flood = ${FLOOD_P99}ms"

kill -TERM "$SERVER"
wait "$SERVER" 2>/dev/null || true
SERVER=0

python3 - "$FAST_OK" "$SLOW_OK" "$SOLO_P99" "$FLOOD_P99" "$OUT" <<'PY'
import json, sys

fast_ok, slow_ok = int(sys.argv[1]), int(sys.argv[2])
solo_p99, flood_p99 = float(sys.argv[3]), float(sys.argv[4])
out = sys.argv[5]

ratio = fast_ok / max(1, slow_ok)
p99x = flood_p99 / max(1e-9, solo_p99)
rep = {
    "bench": "qos_smoke",
    "config": {"weights": {"fast": 4, "slow": 1}, "preload": "github@2",
               "max_inflight": 1, "queue": 8, "cache": 0,
               "mix": "vertex=1 -unique"},
    "fairness": {"fast_admitted": fast_ok, "slow_admitted": slow_ok,
                 "admit_ratio": round(ratio, 3), "want_ratio": 4.0,
                 "tolerance": "ratio in [3.2, 5.0]",
                 "source": "bfserved_tenant_admitted_total deltas"},
    "lane_isolation": {"solo_interactive_p99_ms": solo_p99,
                       "flood_interactive_p99_ms": flood_p99,
                       "p99_ratio": round(p99x, 3), "limit": 2.0},
}
json.dump(rep, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(json.dumps(rep, indent=2))

fails = []
if fast_ok + slow_ok < 200:
    fails.append(f"only {fast_ok + slow_ok} grants — load did not saturate admission")
if not 3.2 <= ratio <= 5.0:
    fails.append(f"admit ratio {ratio:.2f} outside [3.2, 5.0] (want ~4:1)")
if p99x > 2.0:
    fails.append(f"interactive p99 under flood is {p99x:.2f}x solo (limit 2x)")
if fails:
    for f in fails:
        print("FAIL:", f, file=sys.stderr)
    sys.exit(1)
print("OK: 4:1 weights yield a ~4:1 grant split and the batch "
      "flood leaves interactive p99 within 2x solo")
PY
