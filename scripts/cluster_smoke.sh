#!/usr/bin/env bash
# Cluster smoke: boot 2 durable shards + 1 router, register the same
# dataset both unpartitioned ("solo") and hash-partitioned across the
# shards ("parts"), and require the scatter-gather count to equal the
# single-home count — including after an identical mutation batch is
# applied to both copies (delta-sync replay agreement). Then drive
# mixed bfload traffic through the router and kill -9 one shard
# mid-run: the unchanged partitioned graph must keep answering exactly
# from the router's merged pin (X-Cache: merged), while a forced
# scatter (?debug=true) must degrade honestly (200 + "degraded":true,
# never a silently wrong exact answer). Finally restart the shard over
# the same -data-dir (WAL replay) and require every count to come back
# exact and identical to the pre-crash baseline — zero wrong counts
# across the whole episode.
#
# Used by `make cluster-smoke` and the CI cluster-smoke job. Needs
# only curl + standard shell tools.
set -euo pipefail

ROUTER="${ROUTER:-127.0.0.1:18090}"
SHARD1="${SHARD1:-127.0.0.1:18091}"
SHARD2="${SHARD2:-127.0.0.1:18092}"
DIR1="$(mktemp -d)"
DIR2="$(mktemp -d)"
BIN="${BFSERVED:-./bfserved}"
LOAD="${BFLOAD:-./bfload}"

cleanup() {
  for pid in "${S1:-0}" "${S2:-0}" "${RT:-0}"; do
    [ "$pid" -gt 0 ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$DIR1" "$DIR2"
}
trap cleanup EXIT

if [ ! -x "$BIN" ]; then
  go build -o bfserved ./cmd/bfserved
  BIN=./bfserved
fi
if [ ! -x "$LOAD" ]; then
  go build -o bfload ./cmd/bfload
  LOAD=./bfload
fi

wait_ready() { # wait_ready <addr>
  for _ in $(seq 1 100); do
    curl -sf "http://$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "daemon at $1 never became ready" >&2
  return 1
}

field() { # field <json> <name> — jq when available, sed fallback
  if command -v jq >/dev/null 2>&1; then
    printf '%s' "$1" | jq -r ".$2"
  else
    printf '%s' "$1" | sed -E "s/.*\"$2\":([0-9]+).*/\1/"
  fi
}

echo "== boot 2 shards (durable) + router"
"$BIN" -addr "$SHARD1" -role shard -data-dir "$DIR1" -fsync always &
S1=$!
"$BIN" -addr "$SHARD2" -role shard -data-dir "$DIR2" -fsync always &
S2=$!
wait_ready "$SHARD1"
wait_ready "$SHARD2"
"$BIN" -addr "$ROUTER" -role router -shards "http://$SHARD1,http://$SHARD2" &
RT=$!
wait_ready "$ROUTER"
curl -sf "http://$ROUTER/healthz" | grep -q '"role":"router"'

echo "== register solo (one shard) and parts (partitioned across both)"
curl -sf -X POST "http://$ROUTER/v1/graphs" \
  -d '{"name":"solo","dataset":"occupations","scale":40}' >/dev/null
curl -sf -X POST "http://$ROUTER/v1/graphs" \
  -d '{"name":"parts","dataset":"occupations","scale":40,"partitions":2}' >/dev/null
# Both shards must actually hold data now (parts spreads over both).
curl -sf "http://$SHARD1/healthz" | grep -vq '"graphs":0'
curl -sf "http://$SHARD2/healthz" | grep -vq '"graphs":0'

SOLO0=$(curl -sf -X POST "http://$ROUTER/v1/graphs/solo/count" -d '{}')
PARTS0=$(curl -sf -X POST "http://$ROUTER/v1/graphs/parts/count" -d '{}')
echo "   solo:  $SOLO0"
echo "   parts: $PARTS0"
if [ "$(field "$SOLO0" butterflies)" != "$(field "$PARTS0" butterflies)" ]; then
  echo "FAIL: scatter-gather count differs from single-home count" >&2
  exit 1
fi

echo "== mutate both copies identically, counts must track the replay"
MUTATION='{"inserts":[[0,0],[0,1],[1,0],[1,1],[2,2],[3,3]],"deletes":[[0,2],[4,4]]}'
MSOLO=$(curl -sf -X POST "http://$ROUTER/v1/graphs/solo/mutate" -d "$MUTATION")
MPARTS=$(curl -sf -X POST "http://$ROUTER/v1/graphs/parts/mutate" -d "$MUTATION")
echo "   solo:  $MSOLO"
echo "   parts: $MPARTS"
SOLO0=$(curl -sf -X POST "http://$ROUTER/v1/graphs/solo/count" -d '{}')
PARTS0=$(curl -sf -X POST "http://$ROUTER/v1/graphs/parts/count" -d '{}')
if [ "$(field "$SOLO0" butterflies)" != "$(field "$PARTS0" butterflies)" ]; then
  echo "FAIL: post-mutation scatter-gather count differs from single-node replay:" >&2
  echo "  solo=$SOLO0 parts=$PARTS0" >&2
  exit 1
fi
# The same mutation batch must also report the same resulting count in
# the mutate response itself.
if [ "$(field "$MSOLO" count)" != "$(field "$MPARTS" count)" ]; then
  echo "FAIL: mutate responses disagree: solo=$MSOLO parts=$MPARTS" >&2
  exit 1
fi

echo "== mixed load through the router (all shards up, no 5xx allowed)"
"$LOAD" -addr "$ROUTER" -graph solo -no-register -n 400 -c 8 \
  -mix count=3,estimate=1 -cluster "http://$SHARD1,http://$SHARD2"

echo "== kill -9 shard 2 mid-run"
"$LOAD" -addr "$ROUTER" -graph solo -no-register -n 400 -c 4 \
  -mix count=3,estimate=1 -allow-5xx &
LOADPID=$!
sleep 1
kill -9 "$S2"
wait "$S2" 2>/dev/null || true
wait "$LOADPID"

# The partitioned graph lost a shard, but it is unchanged since the
# last gather: the version-pinned merged count keeps answering exactly
# without touching a shard (X-Cache: merged).
PIN=$(curl -sf -i -X POST "http://$ROUTER/v1/graphs/parts/count" -d '{}')
echo "   pinned: $(printf '%s' "$PIN" | tail -1)"
printf '%s' "$PIN" | grep -qi '^x-cache: merged' || {
  echo "FAIL: count with a dead shard not served from the merged pin: $PIN" >&2
  exit 1
}
if [ "$(field "$(printf '%s' "$PIN" | tail -1)" butterflies)" != "$(field "$PARTS0" butterflies)" ]; then
  echo "FAIL: pinned count diverged from the pre-crash answer: $PIN" >&2
  exit 1
fi
# A real scatter (?debug=true bypasses the pin) must answer 200 with
# an explicitly degraded estimate, not a silently wrong exact count.
DEG=$(curl -sf -X POST "http://$ROUTER/v1/graphs/parts/count?debug=true" -d '{}')
echo "   degraded: $DEG"
echo "$DEG" | grep -q '"degraded":true' || {
  echo "FAIL: scatter with a dead shard not marked degraded: $DEG" >&2
  exit 1
}
echo "$DEG" | grep -q '"strategy":"partitions"' || {
  echo "FAIL: degraded answer missing partitions strategy: $DEG" >&2
  exit 1
}

echo "== restart shard 2 (WAL replay) and verify zero wrong counts"
"$BIN" -addr "$SHARD2" -role shard -data-dir "$DIR2" -fsync always &
S2=$!
wait_ready "$SHARD2"

SOLO1=$(curl -sf -X POST "http://$ROUTER/v1/graphs/solo/count" -d '{}')
PARTS1=$(curl -sf -X POST "http://$ROUTER/v1/graphs/parts/count" -d '{}')
echo "   solo:  $SOLO1"
echo "   parts: $PARTS1"
fail=0
if echo "$PARTS1" | grep -q '"degraded":true'; then
  echo "FAIL: parts still degraded after shard restart" >&2
  fail=1
fi
if [ "$(field "$SOLO1" butterflies)" != "$(field "$SOLO0" butterflies)" ]; then
  echo "FAIL: solo count changed across the crash: $(field "$SOLO0" butterflies) -> $(field "$SOLO1" butterflies)" >&2
  fail=1
fi
if [ "$(field "$PARTS1" butterflies)" != "$(field "$PARTS0" butterflies)" ]; then
  echo "FAIL: parts count changed across the crash: $(field "$PARTS0" butterflies) -> $(field "$PARTS1" butterflies)" >&2
  fail=1
fi

kill -TERM "$RT" "$S1" "$S2"
wait "$RT" "$S1" "$S2"
RT=0 S1=0 S2=0

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "OK: cluster survives kill -9 with zero wrong counts"
