package butterfly

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the wire form of a Graph: explicit sizes plus the edge
// list, so isolated trailing vertices survive a round trip (unlike the
// KONECT format, which infers sizes from maximum ids).
type graphJSON struct {
	V1    int      `json:"v1"`
	V2    int      `json:"v2"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as {"v1":…,"v2":…,"edges":[[u,v],…]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(graphJSON{V1: g.NumV1(), V2: g.NumV2(), Edges: g.Edges()})
}

// UnmarshalJSON decodes the MarshalJSON form, validating sizes and
// edge endpoints.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var w graphJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("butterfly: %w", err)
	}
	decoded, err := FromEdges(w.V1, w.V2, w.Edges)
	if err != nil {
		return err
	}
	g.g = decoded.g
	return nil
}
