package butterfly

// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see DESIGN.md §5 and EXPERIMENTS.md for paper-vs-measured shapes):
//
//	BenchmarkFig9Count            — Fig 9's ΞG column (auto algorithm)
//	BenchmarkFig10                — Fig 10: sequential, Inv1–8 × datasets
//	BenchmarkFig11                — Fig 11: 6 threads, Inv1–8 × datasets
//	BenchmarkPartitionSideSweep   — claim C1 (partition the smaller side)
//	BenchmarkSparsitySweep        — claim C2 (sparser graphs are faster)
//	BenchmarkLookAheadAblation    — claim C3 (look-ahead members win)
//	BenchmarkBlockedAblation      — blocked vs unblocked variants
//	BenchmarkDegreeOrderAblation  — future-work degree ordering
//	BenchmarkBaselines            — family vs independent counters
//	BenchmarkKTip / BenchmarkKWing / Benchmark*Decomposition — Section IV
//
// `go test -bench` uses dataset stand-ins scaled down by
// BFLY_BENCH_SCALE (default 10) so the suite stays minutes-scale; the
// full-size tables that mirror the paper's absolute layout come from
// `go run ./cmd/bfbench -table all`.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
)

// benchScale returns the dataset shrink factor for benchmarks.
func benchScale() int {
	if s := os.Getenv("BFLY_BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return 10
}

var (
	benchGraphMu sync.Mutex
	benchGraphs  = map[string]*Graph{}
)

func benchDataset(b *testing.B, name string) *Graph {
	b.Helper()
	key := fmt.Sprintf("%s@%d", name, benchScale())
	benchGraphMu.Lock()
	defer benchGraphMu.Unlock()
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	g, err := GeneratePaperDataset(name, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[key] = g
	return g
}

func benchSynthetic(b *testing.B, key string, gen func() (*Graph, error)) *Graph {
	b.Helper()
	benchGraphMu.Lock()
	defer benchGraphMu.Unlock()
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	g, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[key] = g
	return g
}

// sink defeats dead-code elimination.
var sink int64

// BenchmarkFig9Count regenerates the butterfly-count column of Fig 9.
func BenchmarkFig9Count(b *testing.B) {
	for _, name := range PaperDatasets() {
		b.Run(name, func(b *testing.B) {
			g := benchDataset(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = g.Count()
			}
			b.ReportMetric(float64(sink), "butterflies")
		})
	}
}

// BenchmarkFig10 regenerates Fig 10: sequential timings of all eight
// invariants across the five datasets.
func BenchmarkFig10(b *testing.B) {
	for _, name := range PaperDatasets() {
		for inv := Invariant1; inv <= Invariant8; inv++ {
			b.Run(fmt.Sprintf("%s/%v", name, inv), func(b *testing.B) {
				g := benchDataset(b, name)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v, err := g.CountInvariant(inv)
					if err != nil {
						b.Fatal(err)
					}
					sink = v
				}
			})
		}
	}
}

// BenchmarkFig11 regenerates Fig 11: the same grid with 6 threads,
// matching the paper's 6-core machine.
func BenchmarkFig11(b *testing.B) {
	const threads = 6
	for _, name := range PaperDatasets() {
		for inv := Invariant1; inv <= Invariant8; inv++ {
			b.Run(fmt.Sprintf("%s/%v", name, inv), func(b *testing.B) {
				g := benchDataset(b, name)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v, err := g.CountWith(CountOptions{Invariant: inv, Threads: threads})
					if err != nil {
						b.Fatal(err)
					}
					sink = v
				}
			})
		}
	}
}

// BenchmarkPartitionSideSweep exercises claim C1: with the vertex
// budget fixed, the winning family flips as the smaller side flips.
// Compare Family14 vs Family58 at each ratio.
func BenchmarkPartitionSideSweep(b *testing.B) {
	const budget, edges = 40000, 120000
	for _, ratio := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m := int(float64(budget) * ratio)
		n := budget - m
		key := fmt.Sprintf("partition@%f", ratio)
		for _, fam := range []struct {
			label string
			inv   Invariant
		}{{"Family14", Invariant2}, {"Family58", Invariant7}} {
			b.Run(fmt.Sprintf("V1=%d_V2=%d/%s", m, n, fam.label), func(b *testing.B) {
				g := benchSynthetic(b, key, func() (*Graph, error) {
					return GeneratePowerLaw(m, n, edges, 0.7, 0.7, 31)
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v, err := g.CountInvariant(fam.inv)
					if err != nil {
						b.Fatal(err)
					}
					sink = v
				}
			})
		}
	}
}

// BenchmarkSparsitySweep exercises claim C2: same vertex sets, rising
// edge counts (the controlled form of the GitHub-vs-Producers
// comparison).
func BenchmarkSparsitySweep(b *testing.B) {
	const m, n = 6000, 12000
	for _, e := range []int64{5000, 20000, 44000, 80000} {
		b.Run(fmt.Sprintf("edges=%d", e), func(b *testing.B) {
			g := benchSynthetic(b, fmt.Sprintf("sparsity@%d", e), func() (*Graph, error) {
				return GeneratePowerLaw(m, n, e, 0.7, 0.7, 32)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = g.Count()
			}
		})
	}
}

// BenchmarkLookAheadAblation exercises claim C3 on the most wedge-heavy
// stand-in: eager vs look-ahead member of each family.
func BenchmarkLookAheadAblation(b *testing.B) {
	cases := []struct {
		label string
		inv   Invariant
	}{
		{"cols-eager-Inv1", Invariant1},
		{"cols-ahead-Inv2", Invariant2},
		{"rows-eager-Inv8", Invariant8},
		{"rows-ahead-Inv7", Invariant7},
	}
	for _, c := range cases {
		b.Run(c.label, func(b *testing.B) {
			g := benchDataset(b, "github")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := g.CountInvariant(c.inv)
				if err != nil {
					b.Fatal(err)
				}
				sink = v
			}
		})
	}
}

// BenchmarkBlockedAblation sweeps the blocked variant's block size.
func BenchmarkBlockedAblation(b *testing.B) {
	for _, block := range []int{1, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("block=%d", block), func(b *testing.B) {
			g := benchDataset(b, "occupations")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := g.CountWith(CountOptions{BlockSize: block})
				if err != nil {
					b.Fatal(err)
				}
				sink = v
			}
		})
	}
}

// BenchmarkDegreeOrderAblation measures the future-work degree-order
// optimization (counting only; relabeling excluded).
func BenchmarkDegreeOrderAblation(b *testing.B) {
	for _, o := range []struct {
		label string
		order Order
	}{{"natural", OrderNatural}, {"degree-asc", OrderDegreeAsc}, {"degree-desc", OrderDegreeDesc}} {
		b.Run(o.label, func(b *testing.B) {
			g := benchDataset(b, "github")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := g.CountWith(CountOptions{Order: o.order})
				if err != nil {
					b.Fatal(err)
				}
				sink = v
			}
		})
	}
}

// BenchmarkBaselines compares the family against the independent
// counters on one dataset.
func BenchmarkBaselines(b *testing.B) {
	g := benchDataset(b, "arxiv-cond-mat")
	b.Run("family-auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = g.Count()
		}
	})
	b.Run("estimate-edges-1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, err := g.EstimateCount(EstimateOptions{Strategy: SampleEdges, Samples: 1000, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			sink = int64(v)
		}
	})
	b.Run("verify-all", func(b *testing.B) {
		small := benchSynthetic(b, "verify-small", func() (*Graph, error) {
			return GeneratePowerLaw(2000, 1500, 8000, 0.7, 0.7, 33)
		})
		for i := 0; i < b.N; i++ {
			if err := small.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKTip measures the paper's iterative k-tip extraction and
// the Fig 8 look-ahead variant.
func BenchmarkKTip(b *testing.B) {
	g := benchDataset(b, "arxiv-cond-mat")
	for _, variant := range []string{"iterative", "look-ahead"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var h *Graph
				var err error
				if variant == "iterative" {
					h, err = g.KTip(2, V1)
				} else {
					h, err = g.KTipLookAhead(2, V1)
				}
				if err != nil {
					b.Fatal(err)
				}
				sink = h.NumEdges()
			}
		})
	}
}

// BenchmarkKWing measures iterative k-wing extraction.
func BenchmarkKWing(b *testing.B) {
	g := benchDataset(b, "arxiv-cond-mat")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := g.KWing(2)
		if err != nil {
			b.Fatal(err)
		}
		sink = h.NumEdges()
	}
}

// peelEngineCases are the engine × thread configurations the
// decomposition benchmarks sweep: the incremental delta engine against
// the round-synchronous recount oracle, sequential and parallel.
var peelEngineCases = []struct {
	name string
	opts PeelOptions
}{
	{"delta-t1", PeelOptions{Engine: PeelDelta, Threads: 1}},
	{"delta-t6", PeelOptions{Engine: PeelDelta, Threads: 6}},
	{"recount-t1", PeelOptions{Engine: PeelRecount, Threads: 1}},
	{"recount-t6", PeelOptions{Engine: PeelRecount, Threads: 6}},
}

// BenchmarkTipDecomposition measures the full peeling order: the
// sequential heap baseline and both engines. The skewed power-law
// graph gives a deep peeling hierarchy, which is where the engines
// diverge: the recount engine pays a full support sweep per level
// while the delta engine only pays for the butterflies destroyed.
func BenchmarkTipDecomposition(b *testing.B) {
	g := benchSynthetic(b, "tip-decomp", func() (*Graph, error) {
		return GeneratePowerLaw(1500, 1200, 6000, 0.7, 0.7, 33)
	})
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tn, err := g.TipNumbers(V1)
			if err != nil {
				b.Fatal(err)
			}
			sink = int64(len(tn))
		}
	})
	for _, c := range peelEngineCases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tn, _, err := g.TipNumbersWith(V1, c.opts)
				if err != nil {
					b.Fatal(err)
				}
				sink = int64(len(tn))
			}
		})
	}
}

// BenchmarkWingDecomposition measures the full edge peeling order: the
// sequential heap baseline and both engines.
func BenchmarkWingDecomposition(b *testing.B) {
	g := benchSynthetic(b, "wing-decomp", func() (*Graph, error) {
		return GeneratePowerLaw(1500, 1200, 6000, 0.7, 0.7, 34)
	})
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = int64(len(g.WingNumbers()))
		}
	})
	for _, c := range peelEngineCases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wn, _ := g.WingNumbersWith(c.opts)
				sink = int64(len(wn))
			}
		})
	}
}

// BenchmarkVertexAndEdgeCounts measures the per-vertex and per-edge
// kernels that peeling is built from.
func BenchmarkVertexAndEdgeCounts(b *testing.B) {
	g := benchDataset(b, "producers")
	b.Run("vertex-butterflies", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := g.VertexButterflies(V1)
			if err != nil {
				b.Fatal(err)
			}
			sink = int64(len(s))
		}
	})
	b.Run("edge-supports", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = int64(len(g.EdgeSupports()))
		}
	})
}

// BenchmarkDynamicCounter measures incremental update throughput on a
// seeded stand-in (the streaming extension; see EXPERIMENTS.md).
func BenchmarkDynamicCounter(b *testing.B) {
	g := benchDataset(b, "arxiv-cond-mat")
	d := NewDynamicCounterFromGraph(g)
	m, n := g.NumV1(), g.NumV2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := (i * 2654435761) % m
		v := (i * 40503) % n
		if i%2 == 0 {
			if _, _, err := d.InsertEdge(u, v); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, _, err := d.DeleteEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	sink = d.Count()
}

// BenchmarkAlgorithmComparison compares every public counting
// algorithm on one dataset stand-in.
func BenchmarkAlgorithmComparison(b *testing.B) {
	algs := []Algorithm{AlgorithmFamily, AlgorithmWedgeHash,
		AlgorithmVertexPriority, AlgorithmSortAggregate, AlgorithmSpGEMM}
	for _, alg := range algs {
		b.Run(alg.String(), func(b *testing.B) {
			g := benchDataset(b, "arxiv-cond-mat")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := g.CountWith(CountOptions{Algorithm: alg})
				if err != nil {
					b.Fatal(err)
				}
				sink = v
			}
		})
	}
}

// BenchmarkEstimators compares approximation strategies at fixed work.
func BenchmarkEstimators(b *testing.B) {
	g := benchDataset(b, "occupations")
	cases := []struct {
		name string
		opts EstimateOptions
	}{
		{"vertices-2k", EstimateOptions{Strategy: SampleVertices, Samples: 2000, Seed: 3}},
		{"edges-2k", EstimateOptions{Strategy: SampleEdges, Samples: 2000, Seed: 3}},
		{"sparsify-p25", EstimateOptions{Strategy: SampleSparsify, P: 0.25, Seed: 3}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := g.EstimateCount(c.opts)
				if err != nil {
					b.Fatal(err)
				}
				sink = int64(v)
			}
		})
	}
}
