package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"butterfly/serveapi"
)

// fakeNode is a minimal /v1 server with a settable role and a count
// endpoint that can be forced to answer 503.
func fakeNode(t *testing.T, role string, unavailable *atomic.Bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(serveapi.Health{Status: "ok", Role: role})
	})
	mux.HandleFunc("POST /v1/graphs/{name}/count", func(w http.ResponseWriter, r *http.Request) {
		if unavailable != nil && unavailable.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(serveapi.ErrorEnvelope{Error: serveapi.ErrorDetail{
				Code: serveapi.CodeUnavailable, Message: "draining", RetryAfterMS: 250,
			}})
			return
		}
		_ = json.NewEncoder(w).Encode(serveapi.CountResponse{ResultMeta: serveapi.ResultMeta{Graph: r.PathValue("name"), Version: 1}, Butterflies: 42})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestDialClusterPrefersRouter(t *testing.T) {
	shard := fakeNode(t, "shard", nil)
	router := fakeNode(t, "router", nil)
	c, err := DialCluster(context.Background(), []string{shard.URL, router.URL})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	if c.BaseURL() != router.URL {
		t.Errorf("base = %q, want router %q", c.BaseURL(), router.URL)
	}
	if len(c.fallbacks) != 1 || c.fallbacks[0] != shard.URL {
		t.Errorf("fallbacks = %v, want [%q]", c.fallbacks, shard.URL)
	}
}

func TestDialClusterNoRouter(t *testing.T) {
	shard := fakeNode(t, "shard", nil)
	c, err := DialCluster(context.Background(), []string{"http://127.0.0.1:1", shard.URL})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	if c.BaseURL() != shard.URL {
		t.Errorf("base = %q, want %q", c.BaseURL(), shard.URL)
	}
	if _, err := DialCluster(context.Background(), []string{"http://127.0.0.1:1"}); err == nil {
		t.Error("DialCluster with no reachable node succeeded")
	}
}

func TestReadFailsOverOn503(t *testing.T) {
	var down atomic.Bool
	primary := fakeNode(t, "router", &down)
	backup := fakeNode(t, "shard", nil)
	c, err := DialCluster(context.Background(), []string{primary.URL, backup.URL})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	down.Store(true)
	cr, err := c.Count(context.Background(), "g", serveapi.CountRequest{})
	if err != nil {
		t.Fatalf("count should have failed over: %v", err)
	}
	if cr.Butterflies != 42 {
		t.Errorf("count = %d, want 42", cr.Butterflies)
	}
}

func TestRetryAfterSurfacedOn503(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	node := fakeNode(t, "shard", &down)
	c := New(node.URL) // no fallbacks: the 503 must surface
	_, err := c.Count(context.Background(), "g", serveapi.CountRequest{})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want APIError, got %v", err)
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("503 does not unwrap to ErrUnavailable: %v", err)
	}
	if ae.RetryAfterMS != 250 {
		t.Errorf("RetryAfterMS = %d, want 250 (hint lost on 503)", ae.RetryAfterMS)
	}
	if ae.Code != serveapi.CodeUnavailable {
		t.Errorf("Code = %q, want %q", ae.Code, serveapi.CodeUnavailable)
	}
}

// TestQoSHeadersInjected: WithTenant/WithPriority stamp every request
// path — JSON round trips, the degrade path, and NDJSON ingest.
func TestQoSHeadersInjected(t *testing.T) {
	type seen struct{ tenant, priority string }
	var got []seen
	mux := http.NewServeMux()
	record := func(r *http.Request) {
		got = append(got, seen{r.Header.Get(serveapi.TenantHeader), r.Header.Get(serveapi.PriorityHeader)})
	}
	mux.HandleFunc("POST /v1/graphs/{name}/count", func(w http.ResponseWriter, r *http.Request) {
		record(r)
		_ = json.NewEncoder(w).Encode(serveapi.CountResponse{Butterflies: 1})
	})
	mux.HandleFunc("POST /v1/ingest/{name}/edges", func(w http.ResponseWriter, r *http.Request) {
		record(r)
		_ = json.NewEncoder(w).Encode(serveapi.IngestResponse{})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithTenant("acme"), WithPriority("batch"))
	ctx := context.Background()
	if _, err := c.Count(ctx, "g", serveapi.CountRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CountOrEstimate(ctx, "g", serveapi.CountRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestAppend(ctx, "g", [][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("recorded %d requests, want 3", len(got))
	}
	for i, s := range got {
		if s.tenant != "acme" || s.priority != "batch" {
			t.Errorf("request %d: tenant=%q priority=%q", i, s.tenant, s.priority)
		}
	}

	// An unconfigured client sends neither header.
	got = nil
	plain := New(ts.URL)
	if _, err := plain.Count(ctx, "g", serveapi.CountRequest{}); err != nil {
		t.Fatal(err)
	}
	if got[0].tenant != "" || got[0].priority != "" {
		t.Errorf("plain client leaked QoS headers: %+v", got[0])
	}
}
