// Package client is a small Go client for the bfserved HTTP API
// (cmd/bfserved). Request and response types live in
// butterfly/serveapi; this package adds transport, error mapping and
// convenience methods.
//
//	c := client.New("http://localhost:8080")
//	info, err := c.Register(ctx, serveapi.RegisterRequest{Name: "g", Dataset: "occupations", Scale: 10})
//	count, err := c.Count(ctx, "g", serveapi.CountRequest{Threads: -1})
//
// The client speaks the versioned /v1 surface: every non-2xx response
// is the uniform {error:{code,message,...}} envelope, decoded into an
// *APIError carrying the machine-readable Code and, on 429, the
// server's RetryAfterMS hint. Overload (429), deadline (504) and
// unknown-graph (404) responses additionally unwrap to ErrOverloaded,
// ErrDeadline and ErrNotFound so callers can branch with errors.Is.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"butterfly/serveapi"
)

// ErrOverloaded reports a 429: the server shed the request because its
// admission queue was full. Retry with backoff (the APIError's
// RetryAfterMS carries the server's hint).
var ErrOverloaded = errors.New("bfserved: overloaded (429)")

// ErrDeadline reports a 504: the per-request deadline expired before
// the computation finished.
var ErrDeadline = errors.New("bfserved: deadline exceeded (504)")

// ErrNotFound reports a 404: the named graph is not registered.
var ErrNotFound = errors.New("bfserved: graph not found (404)")

// ErrUnavailable reports a 503: the server is draining, a replica is
// behind its read floor, or — through a cluster router — shards are
// unreachable. Like 429, the APIError's RetryAfterMS carries the
// server's backoff hint.
var ErrUnavailable = errors.New("bfserved: unavailable (503)")

// APIError is any non-2xx response; 429/504/404/503 additionally
// unwrap to the sentinel errors above. Code is the machine-readable
// error code from the /v1 envelope (one of the serveapi.Code*
// constants; empty when talking to a pre-/v1 server). RetryAfterMS is
// the server's backoff hint, set with serveapi.CodeOverloaded (429)
// and with the 503 codes (unavailable, replica_behind).
type APIError struct {
	Status       int
	Code         string
	Message      string
	RetryAfterMS int64
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("bfserved: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("bfserved: %d: %s", e.Status, e.Message)
}

// Unwrap maps well-known statuses onto sentinel errors.
func (e *APIError) Unwrap() error {
	switch e.Status {
	case http.StatusTooManyRequests:
		return ErrOverloaded
	case http.StatusGatewayTimeout:
		return ErrDeadline
	case http.StatusNotFound:
		return ErrNotFound
	case http.StatusServiceUnavailable:
		return ErrUnavailable
	default:
		return nil
	}
}

// Client talks to one bfserved instance (or cluster router). Safe for
// concurrent use. A client built by DialCluster additionally carries
// fallback base URLs: idempotent reads that fail with a transport
// error or a 503 are retried against them in order.
type Client struct {
	base      string
	fallbacks []string
	http      *http.Client
	tenant    string
	priority  string
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, client-side timeouts).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithTenant stamps every request with the X-Bf-Tenant header, so the
// server charges it to that tenant's QoS budget. Names not present in
// the server's tenant config are charged as the default tenant; the
// response echoes the tenant the server actually resolved. A tenant or
// priority set in a request body wins over the client-level value.
func WithTenant(tenant string) Option {
	return func(c *Client) { c.tenant = tenant }
}

// WithPriority stamps every request with the X-Bf-Priority header:
// "interactive" (the default lane) or "batch". Batch requests are only
// dispatched while no interactive request is queued, so bulk loads can
// saturate the server without pushing latency onto interactive users.
func WithPriority(priority string) Option {
	return func(c *Client) { c.priority = priority }
}

// qosHeaders stamps the client-level tenant and priority on a request.
func (c *Client) qosHeaders(h http.Header) {
	if c.tenant != "" {
		h.Set(serveapi.TenantHeader, c.tenant)
	}
	if c.priority != "" {
		h.Set(serveapi.PriorityHeader, c.priority)
	}
}

// BaseURL returns the server base URL this client talks to.
func (c *Client) BaseURL() string { return c.base }

// New returns a client for the server at base (e.g.
// "http://localhost:8080"). API paths are resolved under base+"/v1".
// The default transport keeps a generous keep-alive pool to the one
// server it talks to — load drivers fan dozens of concurrent requests
// at a single base URL, and net/http's default of 2 idle connections
// per host would re-handshake most of them.
func New(base string, opts ...Option) *Client {
	c := &Client{base: base, http: &http.Client{
		Timeout: 10 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// decodeError turns a non-2xx response body into an *APIError. It
// decodes the /v1 envelope first and falls back to the legacy
// {status,error} shape so the client degrades gracefully against
// pre-/v1 servers.
func decodeError(status int, statusLine string, body io.Reader) error {
	b, _ := io.ReadAll(io.LimitReader(body, 1<<20))
	var env serveapi.ErrorEnvelope
	if json.Unmarshal(b, &env) == nil && env.Error.Message != "" {
		return &APIError{
			Status:       status,
			Code:         env.Error.Code,
			Message:      env.Error.Message,
			RetryAfterMS: env.Error.RetryAfterMS,
		}
	}
	var legacy serveapi.Error
	if json.Unmarshal(b, &legacy) == nil && legacy.Message != "" {
		return &APIError{Status: status, Message: legacy.Message}
	}
	return &APIError{Status: status, Message: statusLine}
}

// do issues one write (or otherwise non-retryable) request against
// the /v1 surface and decodes the response into out (skipped when out
// is nil). Writes never fail over: replaying one against a different
// server could double-apply it.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.roundTrip(ctx, c.base, method, path, in, out)
}

// doRead issues an idempotent read, failing over to the fallback
// bases (DialCluster) on a transport error or a 503 — a draining
// node, or a replica behind its read floor.
func (c *Client) doRead(ctx context.Context, method, path string, in, out any) error {
	err := c.roundTrip(ctx, c.base, method, path, in, out)
	if err == nil || len(c.fallbacks) == 0 || !retryableRead(err) {
		return err
	}
	for _, base := range c.fallbacks {
		if ctx.Err() != nil {
			return err
		}
		ferr := c.roundTrip(ctx, base, method, path, in, out)
		if ferr == nil || !retryableRead(ferr) {
			return ferr
		}
		err = ferr
	}
	return err
}

// retryableRead reports whether a read's failure may resolve on a
// different server: transport errors and 503s do; 404s, 4xx and
// deadline expiries do not.
func retryableRead(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusServiceUnavailable
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

func (c *Client) roundTrip(ctx context.Context, base, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+"/v1"+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.qosHeaders(req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp.StatusCode, resp.Status, resp.Body)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// DialCluster probes a seed list of bfserved addresses and returns a
// client for the cluster: the first address whose /v1/healthz answers
// with Role "router" becomes the base, every other reachable address
// a read fallback. With no router in the list (a plain single-node
// deployment, or the router is down) the first reachable address
// serves as base. Idempotent reads (Count, Estimate, GraphInfo, …)
// retry against the fallbacks on transport errors and 503s; writes
// never fail over.
func DialCluster(ctx context.Context, addrs []string, opts ...Option) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: DialCluster needs at least one address")
	}
	var routers, others []string
	var lastErr error
	for _, a := range addrs {
		probe := New(a, opts...)
		h, err := probe.Health(ctx)
		if err != nil {
			// A draining node answers 503 but is still serving; keep it
			// as a fallback of last resort.
			if errors.Is(err, ErrUnavailable) {
				others = append(others, a)
			} else {
				lastErr = err
			}
			continue
		}
		if h.Role == "router" {
			routers = append(routers, a)
		} else {
			others = append(others, a)
		}
	}
	order := append(routers, others...)
	if len(order) == 0 {
		return nil, fmt.Errorf("client: no reachable bfserved among %d addresses: %w", len(addrs), lastErr)
	}
	c := New(order[0], opts...)
	c.fallbacks = order[1:]
	return c, nil
}

// Health fetches /v1/healthz. A draining server answers 503, surfaced
// as an APIError.
func (c *Client) Health(ctx context.Context) (serveapi.Health, error) {
	var h serveapi.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches the raw Prometheus exposition text. /metrics is
// infrastructure and stays unversioned.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	return string(b), err
}

// Register loads a graph into the server's registry.
func (c *Client) Register(ctx context.Context, req serveapi.RegisterRequest) (serveapi.GraphInfo, error) {
	var info serveapi.GraphInfo
	err := c.do(ctx, http.MethodPost, "/graphs", req, &info)
	return info, err
}

// Graphs lists the registered graphs.
func (c *Client) Graphs(ctx context.Context) ([]serveapi.GraphInfo, error) {
	var list serveapi.GraphList
	err := c.doRead(ctx, http.MethodGet, "/graphs", nil, &list)
	return list.Graphs, err
}

// GraphInfo fetches one graph's current version info.
func (c *Client) GraphInfo(ctx context.Context, name string) (serveapi.GraphInfo, error) {
	var info serveapi.GraphInfo
	err := c.doRead(ctx, http.MethodGet, "/graphs/"+url.PathEscape(name), nil, &info)
	return info, err
}

// Drop removes a graph from the registry.
func (c *Client) Drop(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/graphs/"+url.PathEscape(name), nil, nil)
}

// Count runs an exact butterfly count.
func (c *Client) Count(ctx context.Context, graph string, req serveapi.CountRequest) (serveapi.CountResponse, error) {
	var resp serveapi.CountResponse
	err := c.doRead(ctx, http.MethodPost, "/graphs/"+url.PathEscape(graph)+"/count", req, &resp)
	return resp, err
}

// VertexCounts fetches the top vertices by butterfly participation.
func (c *Client) VertexCounts(ctx context.Context, graph string, req serveapi.VertexCountsRequest) (serveapi.VertexCountsResponse, error) {
	var resp serveapi.VertexCountsResponse
	err := c.doRead(ctx, http.MethodPost, "/graphs/"+url.PathEscape(graph)+"/vertex-counts", req, &resp)
	return resp, err
}

// EdgeSupports fetches the top edges by butterfly support.
func (c *Client) EdgeSupports(ctx context.Context, graph string, req serveapi.EdgeSupportsRequest) (serveapi.EdgeSupportsResponse, error) {
	var resp serveapi.EdgeSupportsResponse
	err := c.doRead(ctx, http.MethodPost, "/graphs/"+url.PathEscape(graph)+"/edge-supports", req, &resp)
	return resp, err
}

// Estimate runs a sampling estimator on a registered graph, or — for a
// graph still streaming through ingest — returns the live reservoir
// estimate (State "loading").
func (c *Client) Estimate(ctx context.Context, graph string, req serveapi.EstimateRequest) (serveapi.EstimateResponse, error) {
	var resp serveapi.EstimateResponse
	err := c.doRead(ctx, http.MethodPost, "/graphs/"+url.PathEscape(graph)+"/estimate", req, &resp)
	return resp, err
}

// CountOrEstimate runs an exact count with ?degrade=estimate: under
// overload the server answers with a sampling estimate instead of 429.
// Exactly one of the two responses is non-nil — est when the server
// degraded (est.Degraded is set), count otherwise.
func (c *Client) CountOrEstimate(ctx context.Context, graph string, req serveapi.CountRequest) (count *serveapi.CountResponse, est *serveapi.EstimateResponse, err error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	u := c.base + "/v1/graphs/" + url.PathEscape(graph) + "/count?degrade=estimate"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(b))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.qosHeaders(hreq.Header)
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, nil, decodeError(resp.StatusCode, resp.Status, resp.Body)
	}
	if resp.Header.Get("X-Degraded") != "" {
		est = &serveapi.EstimateResponse{}
		return nil, est, json.NewDecoder(resp.Body).Decode(est)
	}
	count = &serveapi.CountResponse{}
	return count, nil, json.NewDecoder(resp.Body).Decode(count)
}

// IngestOpen opens a streaming ingest: a graph in the loading state
// that accepts edge batches (IngestAppend) and answers approximate
// queries from a reservoir estimator until sealed.
func (c *Client) IngestOpen(ctx context.Context, req serveapi.IngestRequest) (serveapi.IngestResponse, error) {
	var resp serveapi.IngestResponse
	err := c.do(ctx, http.MethodPost, "/ingest", req, &resp)
	return resp, err
}

// IngestStatus fetches the live state of an open ingest.
func (c *Client) IngestStatus(ctx context.Context, name string) (serveapi.IngestResponse, error) {
	var resp serveapi.IngestResponse
	err := c.do(ctx, http.MethodGet, "/ingest/"+url.PathEscape(name), nil, &resp)
	return resp, err
}

// IngestAppend streams a batch of edges into an open ingest as NDJSON
// (one [u,v] line per edge). The response reports how many edges were
// accepted and the updated reservoir estimate.
func (c *Client) IngestAppend(ctx context.Context, name string, edges [][2]int) (serveapi.IngestResponse, error) {
	var resp serveapi.IngestResponse
	var buf bytes.Buffer
	for _, e := range edges {
		fmt.Fprintf(&buf, "[%d,%d]\n", e[0], e[1])
	}
	u := c.base + "/v1/ingest/" + url.PathEscape(name) + "/edges"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &buf)
	if err != nil {
		return resp, err
	}
	hreq.Header.Set("Content-Type", "application/x-ndjson")
	c.qosHeaders(hreq.Header)
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return resp, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode/100 != 2 {
		return resp, decodeError(hresp.StatusCode, hresp.Status, hresp.Body)
	}
	return resp, json.NewDecoder(hresp.Body).Decode(&resp)
}

// IngestSeal promotes an open ingest to a registered, exact-countable
// graph at version 1.
func (c *Client) IngestSeal(ctx context.Context, name string) (serveapi.GraphInfo, error) {
	var info serveapi.GraphInfo
	err := c.do(ctx, http.MethodPost, "/ingest/"+url.PathEscape(name)+"/seal", nil, &info)
	return info, err
}

// IngestAbort discards an open ingest.
func (c *Client) IngestAbort(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/ingest/"+url.PathEscape(name), nil, nil)
}

// Peel runs a k-tip or k-wing peel.
func (c *Client) Peel(ctx context.Context, graph string, req serveapi.PeelRequest) (serveapi.PeelResponse, error) {
	var resp serveapi.PeelResponse
	err := c.doRead(ctx, http.MethodPost, "/graphs/"+url.PathEscape(graph)+"/peel", req, &resp)
	return resp, err
}

// Checkpoint forces the daemon to snapshot every graph and compact
// its write-ahead log. Fails with a 400 APIError when the daemon runs
// without -data-dir.
func (c *Client) Checkpoint(ctx context.Context) (serveapi.CheckpointResponse, error) {
	var resp serveapi.CheckpointResponse
	err := c.do(ctx, http.MethodPost, "/admin/checkpoint", nil, &resp)
	return resp, err
}

// Mutate applies an edge mutation batch, producing a new graph
// version.
func (c *Client) Mutate(ctx context.Context, graph string, req serveapi.MutateRequest) (serveapi.MutateResponse, error) {
	var resp serveapi.MutateResponse
	err := c.do(ctx, http.MethodPost, "/graphs/"+url.PathEscape(graph)+"/mutate", req, &resp)
	return resp, err
}
