package main

import (
	"strings"
	"testing"
)

const routerMetricsT0 = `# HELP bfrouter_partial_cache_hits_total Partition partials served from router state.
# TYPE bfrouter_partial_cache_hits_total counter
bfrouter_partial_cache_hits_total{kind="merged"} 3
bfrouter_partial_cache_hits_total{kind="delta"} 2
bfrouter_partial_cache_hits_total{kind="noop"} 1
# TYPE bfrouter_partial_cache_misses_total counter
bfrouter_partial_cache_misses_total{reason="cold"} 4
# TYPE bfrouter_coalesced_total counter
bfrouter_coalesced_total 5
bfrouter_requests_total{route="count",code="200"} 999
`

const routerMetricsT1 = `bfrouter_partial_cache_hits_total{kind="merged"} 83
bfrouter_partial_cache_hits_total{kind="delta"} 10
bfrouter_partial_cache_hits_total{kind="noop"} 3
bfrouter_partial_cache_misses_total{reason="cold"} 6
bfrouter_partial_cache_misses_total{reason="full"} 2
bfrouter_coalesced_total 25
`

func TestParseRouterSample(t *testing.T) {
	s, err := parseRouterSample(strings.NewReader(routerMetricsT0))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.partialHits != 6 {
		t.Errorf("partialHits = %d, want 6 (summed across kinds)", s.partialHits)
	}
	if s.partialMisses != 4 {
		t.Errorf("partialMisses = %d, want 4", s.partialMisses)
	}
	if s.coalesced != 5 {
		t.Errorf("coalesced = %d, want 5 (label-free line)", s.coalesced)
	}

	// A single-node /metrics without the bfrouter families parses to
	// all zeros rather than erroring.
	s, err = parseRouterSample(strings.NewReader(metricsT0))
	if err != nil {
		t.Fatalf("parse shard metrics: %v", err)
	}
	if s.partialHits != 0 || s.partialMisses != 0 || s.coalesced != 0 {
		t.Errorf("shard metrics parsed to %+v, want zeros", s)
	}
}

func TestRouterSection(t *testing.T) {
	b, err := parseRouterSample(strings.NewReader(routerMetricsT0))
	if err != nil {
		t.Fatal(err)
	}
	a, err := parseRouterSample(strings.NewReader(routerMetricsT1))
	if err != nil {
		t.Fatal(err)
	}
	rs := routerSection(b, a, 200)
	if rs.PartialCacheHits != 90 || rs.PartialCacheMisses != 4 {
		t.Errorf("hits/misses = %d/%d, want 90/4", rs.PartialCacheHits, rs.PartialCacheMisses)
	}
	if want := 90.0 / 94.0; rs.PartialCacheHitRate != want {
		t.Errorf("hit rate = %v, want %v", rs.PartialCacheHitRate, want)
	}
	if rs.Coalesced != 20 || rs.CoalescedRate != 0.1 {
		t.Errorf("coalesced = %d rate %v, want 20 rate 0.1", rs.Coalesced, rs.CoalescedRate)
	}

	// No traffic at all: rates stay zero instead of NaN.
	rs = routerSection(b, b, 0)
	if rs.PartialCacheHitRate != 0 || rs.CoalescedRate != 0 {
		t.Errorf("zero-traffic rates = %v/%v, want 0/0", rs.PartialCacheHitRate, rs.CoalescedRate)
	}
}
