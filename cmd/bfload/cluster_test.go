package main

import (
	"math"
	"strings"
	"testing"
)

const metricsT0 = `# HELP bfserved_requests_total Finished HTTP requests by route and status code.
# TYPE bfserved_requests_total counter
bfserved_requests_total{route="count",code="200"} 10
bfserved_requests_total{route="mutate",code="200"} 5
# TYPE bfserved_request_seconds histogram
bfserved_request_seconds_bucket{le="0.005"} 8
bfserved_request_seconds_bucket{le="0.05"} 14
bfserved_request_seconds_bucket{le="0.5"} 15
bfserved_request_seconds_bucket{le="+Inf"} 15
bfserved_request_seconds_sum 0.42
bfserved_request_seconds_count 15
`

const metricsT1 = `bfserved_requests_total{route="count",code="200"} 100
bfserved_requests_total{route="mutate",code="200"} 15
bfserved_request_seconds_bucket{le="0.005"} 57
bfserved_request_seconds_bucket{le="0.05"} 113
bfserved_request_seconds_bucket{le="0.5"} 115
bfserved_request_seconds_bucket{le="+Inf"} 115
`

func TestParseShardSample(t *testing.T) {
	s, err := parseShardSample(strings.NewReader(metricsT0))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.requests != 15 {
		t.Errorf("requests = %d, want 15", s.requests)
	}
	if got := s.buckets[0.05]; got != 14 {
		t.Errorf("bucket le=0.05 = %d, want 14", got)
	}
	if got := s.buckets[math.Inf(1)]; got != 15 {
		t.Errorf("bucket le=+Inf = %d, want 15", got)
	}
}

func TestDeltaP99(t *testing.T) {
	b, err := parseShardSample(strings.NewReader(metricsT0))
	if err != nil {
		t.Fatalf("parse before: %v", err)
	}
	a, err := parseShardSample(strings.NewReader(metricsT1))
	if err != nil {
		t.Fatalf("parse after: %v", err)
	}
	// Delta: 100 requests, cumulative 49 @5ms, 99 @50ms, 100 @500ms.
	// p99 target = 99 requests, hit exactly at the 50ms bucket edge.
	p99 := deltaP99(b, a)
	if p99 < 45 || p99 > 50 {
		t.Errorf("p99 = %.2f ms, want ≈50 (interpolated within (5, 50])", p99)
	}
	if got := deltaP99(b, b); got != 0 {
		t.Errorf("zero-delta p99 = %.2f, want 0", got)
	}
}

func TestClusterSection(t *testing.T) {
	mk := func(reqs int64, le5, le50 int64) shardSample {
		return shardSample{requests: reqs, buckets: map[float64]int64{
			0.005: le5, 0.05: le50, math.Inf(1): le50,
		}}
	}
	before := map[string]shardSample{
		"http://a": mk(0, 0, 0),
		"http://b": mk(0, 0, 0),
	}
	after := map[string]shardSample{
		"http://a": mk(75, 75, 75), // fast shard: everything under 5ms
		"http://b": mk(25, 0, 25),  // slow shard: everything in (5, 50]
	}
	cr := clusterSection([]string{"http://a", "http://b", "http://dead"}, before, after)
	if len(cr.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(cr.Shards))
	}
	if cr.Shards[0].Requests != 75 || math.Abs(cr.Shards[0].Share-0.75) > 1e-9 {
		t.Errorf("shard a = %+v, want 75 req / 0.75 share", cr.Shards[0])
	}
	if cr.Shards[2].Requests != -1 {
		t.Errorf("unreachable shard requests = %d, want -1", cr.Shards[2].Requests)
	}
	if math.Abs(cr.MaxShare-0.75) > 1e-9 || math.Abs(cr.MinShare-0.25) > 1e-9 {
		t.Errorf("share bounds = [%.2f, %.2f], want [0.25, 0.75]", cr.MinShare, cr.MaxShare)
	}
	if cr.P99Skew < 2 {
		t.Errorf("p99 skew = %.2f, want ≥ 2 (slow shard ~10x slower)", cr.P99Skew)
	}
	for _, l := range cr.Shards[:2] {
		if l.P99MS <= 0 {
			t.Errorf("shard %s p99 = %.2f, want > 0", l.Shard, l.P99MS)
		}
	}
}
