// Command bfload drives load against a bfserved instance and reports
// throughput and latency — the serving-layer counterpart of bfbench.
//
// It registers a synthetic dataset (unless -no-register), then fires
// -n requests from -c concurrent workers drawn from a weighted
// operation mix (-mix), and prints a latency/throughput summary plus
// per-status counts. Any 5xx response makes bfload exit nonzero, so
// CI can use it as a smoke gate:
//
//	bfload -addr localhost:8080 -graph occupations -dataset occupations -scale 20 -n 1000 -c 8
//	bfload -addr localhost:8080 -graph g -dataset github -scale 50 -json -
//
// Mutation operations insert and delete random edges, exercising the
// copy-on-write snapshot path and invalidating the result cache by
// version bump — a realistic mixed read/write workload.
//
// With -ingest the registration phase streams the dataset through the
// approximate tier instead of registering it wholesale: it opens a
// /v1/ingest stream, appends edges in -ingest-batch NDJSON batches,
// queries /v1/estimate mid-load (asserting a well-formed CI envelope),
// seals, and verifies the sealed exact count against a local offline
// count of the same edges — the end-to-end lifecycle CI runs as a
// smoke gate.
//
// Against a cluster router, -cluster lists the shard base URLs:
// bfload scrapes each shard's /metrics before and after the run and
// reports the per-shard request distribution plus the p99 latency
// skew between shards — a one-command check that consistent-hash
// placement is actually balanced. -partitions registers the graph
// hash-partitioned across the shards (router scatter-gather counts).
//
// Estimate operations additionally report accuracy: because the exact
// butterfly count of the registered graph is known, the report carries
// the mean and max relative error of every estimate answer
// (estimate_accuracy in -json), turning a load run into a cheap
// statistical acceptance check.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"butterfly"
	"butterfly/client"
	"butterfly/internal/obsv"
	"butterfly/serveapi"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bfload:", err)
		os.Exit(1)
	}
}

type opKind int

const (
	opCount opKind = iota
	opVertex
	opEdges
	opEstimate
	opPeel
	opMutate
	numOps
)

var opNames = [numOps]string{"count", "vertex", "edges", "estimate", "peel", "mutate"}

// report is the machine-readable summary (-json).
type report struct {
	Addr        string             `json:"addr"`
	Graph       string             `json:"graph"`
	Requests    int                `json:"requests"`
	Concurrency int                `json:"concurrency"`
	Mix         string             `json:"mix"`
	ElapsedSec  float64            `json:"elapsed_s"`
	Throughput  float64            `json:"throughput_rps"`
	LatencyMS   latencySummary     `json:"latency_ms"`
	ByOp        map[string]int     `json:"by_op"`
	ByStatus    map[string]int     `json:"by_status"`
	Server5xx   int                `json:"server_5xx"`
	OpLatencyMS map[string]float64 `json:"op_mean_latency_ms"`
	// OpPercentiles reports per-endpoint p50/p95/p99 estimated from a
	// fixed-bucket latency histogram per op (same buckets as the
	// server's bfserved_route_seconds), so client-observed and
	// server-observed latencies compare bucket for bucket.
	OpPercentiles map[string]latencyPct `json:"op_latency_ms"`
	// Retries429 counts requests re-sent after a 429 under -retry429.
	Retries429 int `json:"retries_429,omitempty"`
	// EstimateAccuracy summarizes estimate-op answers against the known
	// exact count (present when the mix ran estimate ops).
	EstimateAccuracy *accuracySummary `json:"estimate_accuracy,omitempty"`
	// Cluster reports per-shard request distribution and p99 skew,
	// present only with -cluster (see cluster.go).
	Cluster *clusterReport `json:"cluster,omitempty"`
	// TenantMix echoes -tenant-mix; Tenants carries per-tenant
	// admission and latency, present with -tenant-mix or a -replay
	// trace naming tenants. The map key is the tenant name the client
	// sent (which the server may have collapsed to "default").
	TenantMix string                   `json:"tenant_mix,omitempty"`
	Tenants   map[string]*tenantReport `json:"tenants,omitempty"`
	// Replayed is the trace file driven by -replay, if any.
	Replayed string `json:"replayed,omitempty"`
}

// accuracySummary is the per-run estimate accuracy report: relative
// errors of every successful estimate answer vs. the graph's exact
// count at registration time.
type accuracySummary struct {
	Answers    int     `json:"answers"`
	Exact      int64   `json:"exact"`
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
}

type latencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// latencyPct is the per-op histogram summary.
type latencyPct struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bfload", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", "localhost:8080", "bfserved address (host:port or URL)")
		graph      = fs.String("graph", "loadtest", "graph name to query")
		dataset    = fs.String("dataset", "occupations", "synthetic dataset to register as -graph")
		scale      = fs.Int("scale", 20, "dataset shrink factor")
		noRegister = fs.Bool("no-register", false, "assume -graph is already registered")
		n          = fs.Int("n", 1000, "total requests")
		c          = fs.Int("c", 8, "concurrent workers")
		mix        = fs.String("mix", "count=5,vertex=1,edges=1,estimate=1,peel=1,mutate=1", "weighted operation mix")
		seed       = fs.Int64("seed", 1, "workload RNG seed")
		timeoutMS  = fs.Int("timeout-ms", 0, "per-request timeout_ms sent to the server (0 = server default)")
		jsonOut    = fs.String("json", "", "write the report as JSON to this file, or - for stdout")
		allow5xx   = fs.Bool("allow-5xx", false, "do not fail on 5xx responses")
		retry429   = fs.Bool("retry429", false, "re-send shed (429) requests after the server's retry_after_ms hint (up to 3 attempts)")
		ingest     = fs.Bool("ingest", false, "stream the dataset through /v1/ingest (estimate mid-load, seal, verify) instead of registering wholesale")
		ingestBat  = fs.Int("ingest-batch", 1000, "edges per append batch with -ingest")
		reservoir  = fs.Int("reservoir", 0, "reservoir capacity for -ingest (0 = server default)")
		clusterStr = fs.String("cluster", "", "comma-separated shard base URLs: scrape each shard's /metrics around the run and report per-shard request share and p99 skew (-addr should be the router)")
		partitions = fs.Int("partitions", 0, "register -graph hash-partitioned across this many shards (router only)")
		tenantMix  = fs.String("tenant-mix", "", "comma-separated tenant:priority:weight shares (e.g. gold:interactive:4,bulk:batch:1): issue the op mix under per-tenant QoS identities and report per-tenant admission and latency (see docs/QOS.md)")
		recordPath = fs.String("record", "", "write one {op,tenant,priority} JSON line per request to this file, replayable with -replay")
		replayPath = fs.String("replay", "", "replay a -record JSONL trace (cycling it to -n requests) instead of sampling -mix/-tenant-mix")
		unique     = fs.Bool("unique", false, "vary request parameters per request to defeat the result cache (family counts still coalesce by design)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 || *c <= 0 {
		return fmt.Errorf("-n and -c must be positive")
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	tenants, err := parseTenantMix(*tenantMix)
	if err != nil {
		return err
	}
	var trace []traceEntry
	if *replayPath != "" {
		if trace, err = loadTrace(*replayPath); err != nil {
			return err
		}
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cl := client.New(base)
	clients := newClientCache(base, cl)
	ctx := context.Background()

	switch {
	case *ingest:
		if err := streamIngest(ctx, cl, out, *graph, *dataset, *scale, *ingestBat, *reservoir, *seed); err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
	case !*noRegister:
		info, err := cl.Register(ctx, serveapi.RegisterRequest{
			Name: *graph, Dataset: *dataset, Scale: *scale, Replace: true,
			Partitions: *partitions,
		})
		if err != nil {
			return fmt.Errorf("register: %w", err)
		}
		fmt.Fprintf(out, "registered %s v%d: %dx%d, %d edges, %d butterflies\n",
			info.Name, info.Version, info.NumV1, info.NumV2, info.NumEdges, info.Butterflies)
	}
	info, err := cl.GraphInfo(ctx, *graph)
	if err != nil {
		return fmt.Errorf("graph info: %w", err)
	}

	// Cluster mode: baseline scrape of each shard's /metrics so the
	// post-run delta isolates this run's traffic.
	var shardURLs []string
	for _, s := range strings.Split(*clusterStr, ",") {
		if s = strings.TrimSpace(s); s != "" {
			if !strings.Contains(s, "://") {
				s = "http://" + s
			}
			shardURLs = append(shardURLs, strings.TrimRight(s, "/"))
		}
	}
	scrapeClient := &http.Client{Timeout: 10 * time.Second}
	var beforeSamples map[string]shardSample
	var beforeRouter routerSample
	var routerScraped bool
	if len(shardURLs) > 0 {
		beforeSamples = scrapeAll(ctx, scrapeClient, shardURLs, out)
		// -addr is the router in cluster mode; its /metrics carries the
		// partitioned fast-path counters (partial cache, coalescing).
		if rs, err := scrapeRouter(ctx, scrapeClient, base); err == nil {
			beforeRouter, routerScraped = rs, true
		} else {
			fmt.Fprintf(out, "  warning: scrape router %s: %v\n", base, err)
		}
	}

	var (
		mu        sync.Mutex
		latencies = make([]float64, 0, *n)
		byOp      = map[string]int{}
		byStatus  = map[string]int{}
		opLatSum  = map[string]float64{}
		relErrs   []float64
		tallies   = map[string]*tenantTally{}
		recorded  []traceEntry
		fiveXX    atomic.Int64
		retried   atomic.Int64
		next      atomic.Int64
		wg        sync.WaitGroup
	)
	if *recordPath != "" {
		recorded = make([]traceEntry, *n)
	}
	// Estimate accuracy is meaningful only while the exact count stays
	// fixed, so it is tracked unless the mix mutates the graph.
	trackAccuracy := weights[opMutate] == 0 && info.Butterflies > 0
	// Per-op latency histograms (concurrency-safe; observed in
	// seconds, reported in ms) for the p50/p95/p99 table.
	var opHist [numOps]*obsv.Histogram
	for i := range opHist {
		opHist[i] = obsv.NewHistogram(obsv.LatencyBuckets)
	}

	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(worker)*7919))
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				var op opKind
				var tenant, prio string
				if trace != nil {
					e := trace[i%len(trace)]
					op, _ = opFromName(e.Op) // validated at load
					tenant, prio = e.Tenant, e.Priority
				} else {
					op = pickOp(rng, weights)
					if len(tenants) > 0 {
						ts := pickTenant(rng, tenants)
						tenant, prio = ts.name, ts.priority
					}
				}
				tcl := clients.get(tenant, prio)
				seq := -1
				if *unique {
					seq = i
				}
				var (
					status  int
					retryMS int64
					est     float64
					isEst   bool
					dt      float64
				)
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					status, retryMS, est, isEst = doOp(ctx, tcl, *graph, info, op, rng, *timeoutMS, seq)
					dt = time.Since(t0).Seconds() * 1000
					if status != 429 || !*retry429 || attempt >= 3 {
						break
					}
					// Honor the server's backoff hint before re-sending.
					retried.Add(1)
					if retryMS <= 0 {
						retryMS = 100
					}
					time.Sleep(time.Duration(retryMS) * time.Millisecond)
				}
				if status >= 500 {
					fiveXX.Add(1)
				}
				opHist[op].Observe(dt / 1000)
				if recorded != nil {
					recorded[i] = traceEntry{Op: opNames[op], Tenant: tenant, Priority: prio}
				}
				mu.Lock()
				latencies = append(latencies, dt)
				byOp[opNames[op]]++
				byStatus[strconv.Itoa(status)]++
				opLatSum[opNames[op]] += dt
				if tenant != "" || len(tenants) > 0 || trace != nil {
					label := tenant
					if label == "" {
						label = "default"
					}
					tt := tallies[label]
					if tt == nil {
						tt = newTenantTally()
						tallies[label] = tt
					}
					tt.requests++
					switch {
					case status == 200:
						tt.ok++
					case status == 429:
						tt.s429++
					}
					// Latency percentiles cover admitted requests only:
					// mixing sub-millisecond 429s in would make a tenant
					// look faster the harder it is being shed.
					if status == 200 {
						tt.hist.Observe(dt / 1000)
					}
				}
				if isEst && status == 200 && trackAccuracy {
					re := (est - float64(info.Butterflies)) / float64(info.Butterflies)
					if re < 0 {
						re = -re
					}
					relErrs = append(relErrs, re)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	rep := report{
		Addr: base, Graph: *graph, Requests: *n, Concurrency: *c, Mix: *mix,
		ElapsedSec: elapsed.Seconds(),
		Throughput: float64(*n) / elapsed.Seconds(),
		LatencyMS: latencySummary{
			P50: pct(0.50), P90: pct(0.90), P99: pct(0.99),
			Max: pct(1.0), Mean: sum / float64(len(latencies)),
		},
		ByOp: byOp, ByStatus: byStatus,
		Server5xx:     int(fiveXX.Load()),
		OpLatencyMS:   map[string]float64{},
		OpPercentiles: map[string]latencyPct{},
		Retries429:    int(retried.Load()),
	}
	for op, total := range opLatSum {
		rep.OpLatencyMS[op] = total / float64(byOp[op])
	}
	for i, h := range opHist {
		if h.Count() == 0 {
			continue
		}
		rep.OpPercentiles[opNames[i]] = latencyPct{
			P50: h.Quantile(0.50) * 1000,
			P95: h.Quantile(0.95) * 1000,
			P99: h.Quantile(0.99) * 1000,
		}
	}
	rep.TenantMix = *tenantMix
	rep.Replayed = *replayPath
	if len(tallies) > 0 {
		totalOK := 0
		for _, tt := range tallies {
			totalOK += tt.ok
		}
		rep.Tenants = map[string]*tenantReport{}
		for name, tt := range tallies {
			tr := &tenantReport{
				Requests: tt.requests, OK: tt.ok, Status429: tt.s429,
				P50MS: tt.hist.Quantile(0.50) * 1000,
				P99MS: tt.hist.Quantile(0.99) * 1000,
			}
			if totalOK > 0 {
				tr.AdmitShare = float64(tt.ok) / float64(totalOK)
			}
			rep.Tenants[name] = tr
		}
	}
	if len(shardURLs) > 0 {
		rep.Cluster = clusterSection(shardURLs, beforeSamples, scrapeAll(ctx, scrapeClient, shardURLs, out))
		if routerScraped {
			if rs, err := scrapeRouter(ctx, scrapeClient, base); err == nil {
				rep.Cluster.Router = routerSection(beforeRouter, rs, int64(*n))
			}
		}
	}
	if len(relErrs) > 0 {
		acc := &accuracySummary{Answers: len(relErrs), Exact: info.Butterflies}
		for _, re := range relErrs {
			acc.MeanRelErr += re
			if re > acc.MaxRelErr {
				acc.MaxRelErr = re
			}
		}
		acc.MeanRelErr /= float64(len(relErrs))
		rep.EstimateAccuracy = acc
	}

	fmt.Fprintf(out, "%d requests in %.2fs → %.1f req/s (workers=%d)\n",
		*n, rep.ElapsedSec, rep.Throughput, *c)
	fmt.Fprintf(out, "latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f mean=%.2f\n",
		rep.LatencyMS.P50, rep.LatencyMS.P90, rep.LatencyMS.P99, rep.LatencyMS.Max, rep.LatencyMS.Mean)
	statuses := make([]string, 0, len(byStatus))
	for s := range byStatus {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	for _, s := range statuses {
		fmt.Fprintf(out, "  status %s: %d\n", s, byStatus[s])
	}
	ops := make([]string, 0, len(byOp))
	for o := range byOp {
		ops = append(ops, o)
	}
	sort.Strings(ops)
	for _, o := range ops {
		pct := rep.OpPercentiles[o]
		fmt.Fprintf(out, "  op %-8s %6d (mean %.2f ms, p50≈%.2f p95≈%.2f p99≈%.2f)\n",
			o, byOp[o], rep.OpLatencyMS[o], pct.P50, pct.P95, pct.P99)
	}
	if rep.Retries429 > 0 {
		fmt.Fprintf(out, "  retried %d shed request(s) after retry_after_ms\n", rep.Retries429)
	}
	if len(rep.Tenants) > 0 {
		names := make([]string, 0, len(rep.Tenants))
		for name := range rep.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintln(out, "per-tenant admission:")
		for _, name := range names {
			tr := rep.Tenants[name]
			fmt.Fprintf(out, "  %-12s %6d req, %6d ok (%.1f%% of admits), %5d x429, p50≈%.2f ms p99≈%.2f ms\n",
				name, tr.Requests, tr.OK, tr.AdmitShare*100, tr.Status429, tr.P50MS, tr.P99MS)
		}
	}
	if rep.EstimateAccuracy != nil {
		a := rep.EstimateAccuracy
		fmt.Fprintf(out, "  estimate accuracy: %d answers vs exact %d, mean rel err %.2f%%, max %.2f%%\n",
			a.Answers, a.Exact, a.MeanRelErr*100, a.MaxRelErr*100)
	}
	if rep.Cluster != nil {
		fmt.Fprintf(out, "shard distribution (share max %.1f%% min %.1f%%, p99 skew %.2fx):\n",
			rep.Cluster.MaxShare*100, rep.Cluster.MinShare*100, rep.Cluster.P99Skew)
		for _, l := range rep.Cluster.Shards {
			if l.Requests < 0 {
				fmt.Fprintf(out, "  %-28s unreachable\n", l.Shard)
				continue
			}
			fmt.Fprintf(out, "  %-28s %6d req (%.1f%%), p99≈%.2f ms\n",
				l.Shard, l.Requests, l.Share*100, l.P99MS)
		}
		if rs := rep.Cluster.Router; rs != nil {
			fmt.Fprintf(out, "router partial cache: %d hits / %d misses (%.1f%% hit rate), coalesced %d (%.1f%% of requests)\n",
				rs.PartialCacheHits, rs.PartialCacheMisses, rs.PartialCacheHitRate*100,
				rs.Coalesced, rs.CoalescedRate*100)
		}
	}

	if recorded != nil {
		if err := writeTrace(*recordPath, recorded); err != nil {
			return fmt.Errorf("write -record trace: %w", err)
		}
		fmt.Fprintf(out, "recorded %d requests to %s\n", len(recorded), *recordPath)
	}

	if *jsonOut != "" {
		var w io.Writer = out
		var f *os.File
		if *jsonOut != "-" {
			f, err = os.Create(*jsonOut)
			if err != nil {
				return err
			}
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if f != nil {
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote report to %s\n", *jsonOut)
		}
	}

	if rep.Server5xx > 0 && !*allow5xx {
		return fmt.Errorf("%d requests answered 5xx", rep.Server5xx)
	}
	return nil
}

// doOp fires one request and returns its HTTP status: 200 on success,
// the APIError status on an HTTP-level failure, and 0 for transport
// errors (connection refused, timeouts below HTTP) — reported as
// their own bucket in the status table. The second return is the
// server's retry_after_ms backoff hint, nonzero only on 429; the last
// two carry the answer of a successful estimate op for the accuracy
// report.
//
// seq ≥ 0 (-unique) varies the cacheable request parameters per
// request so every op misses the result cache — the load then
// exercises admission and the kernels instead of the LRU. Counts keep
// their shape regardless: the family's count answers are equivalent,
// so identical concurrent counts coalesce by design.
func doOp(ctx context.Context, cl *client.Client, graph string, info serveapi.GraphInfo, op opKind, rng *rand.Rand, timeoutMS, seq int) (int, int64, float64, bool) {
	var err error
	top := 20
	estSeed := rng.Int63n(16)
	peelK := int64(1 + rng.Intn(4))
	if seq >= 0 {
		top = 1 + seq%997
		estSeed = int64(seq)
		peelK = int64(1 + seq%13)
	}
	switch op {
	case opCount:
		_, err = cl.Count(ctx, graph, serveapi.CountRequest{
			Invariant:     rng.Intn(9),
			Threads:       []int{1, -1}[rng.Intn(2)],
			TimeoutMillis: timeoutMS,
		})
	case opVertex:
		_, err = cl.VertexCounts(ctx, graph, serveapi.VertexCountsRequest{
			Side: []string{"v1", "v2"}[rng.Intn(2)], Top: top, TimeoutMillis: timeoutMS,
		})
	case opEdges:
		_, err = cl.EdgeSupports(ctx, graph, serveapi.EdgeSupportsRequest{Top: top, TimeoutMillis: timeoutMS})
	case opEstimate:
		var est serveapi.EstimateResponse
		est, err = cl.Estimate(ctx, graph, serveapi.EstimateRequest{
			Strategy: "edges", Samples: 500, Seed: estSeed, TimeoutMillis: timeoutMS,
		})
		if err == nil {
			return 200, 0, est.Estimate, true
		}
	case opPeel:
		_, err = cl.Peel(ctx, graph, serveapi.PeelRequest{
			Mode: "tip", K: peelK, Side: "v1", Threads: -1, TimeoutMillis: timeoutMS,
		})
	case opMutate:
		ins := make([][2]int, 2)
		del := make([][2]int, 1)
		for i := range ins {
			ins[i] = [2]int{rng.Intn(info.NumV1), rng.Intn(info.NumV2)}
		}
		del[0] = ins[0] // delete one of the just-inserted edges
		_, err = cl.Mutate(ctx, graph, serveapi.MutateRequest{Inserts: ins, Deletes: del})
	}
	if err == nil {
		return 200, 0, 0, false
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status, apiErr.RetryAfterMS, 0, false
	}
	return 0, 0, 0, false // transport failure
}

// streamIngest pushes the synthetic dataset through the streaming
// ingest lifecycle: open, NDJSON append batches, a mid-load estimate
// (checked for a well-formed CI envelope), seal, and an exact-count
// check of the sealed graph against a local offline count of the same
// edges.
func streamIngest(ctx context.Context, cl *client.Client, out io.Writer, graph, dataset string, scale, batch, reservoir int, seed int64) error {
	g, err := butterfly.GeneratePaperDataset(dataset, scale)
	if err != nil {
		return err
	}
	edges := g.Edges()
	if batch <= 0 {
		batch = 1000
	}
	open, err := cl.IngestOpen(ctx, serveapi.IngestRequest{
		Name: graph, M: g.NumV1(), N: g.NumV2(),
		Reservoir: reservoir, Seed: seed, Replace: true,
	})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	fmt.Fprintf(out, "ingesting %s: %dx%d, %d edges in batches of %d (reservoir %d)\n",
		graph, g.NumV1(), g.NumV2(), len(edges), batch, open.ReservoirCap)

	half := len(edges) / 2
	for i := 0; i < len(edges); i += batch {
		end := min(i+batch, len(edges))
		if _, err := cl.IngestAppend(ctx, graph, edges[i:end]); err != nil {
			return fmt.Errorf("append [%d:%d]: %w", i, end, err)
		}
		if i < half && end >= half {
			// Mid-load: the estimate endpoint must answer from the live
			// reservoir with a well-formed CI envelope.
			est, err := cl.Estimate(ctx, graph, serveapi.EstimateRequest{})
			if err != nil {
				return fmt.Errorf("mid-load estimate: %w", err)
			}
			if est.State != "loading" || est.Strategy != "reservoir" ||
				est.Estimate < 0 || est.StdErr < 0 || est.CI95 < 1.9*est.StdErr {
				return fmt.Errorf("malformed mid-load estimate envelope: %+v", est)
			}
			fmt.Fprintf(out, "  mid-load estimate ≈ %.0f ± %.0f (95%% CI, %d edges seen)\n",
				est.Estimate, est.CI95, est.EdgesSeen)
		}
	}
	sealed, err := cl.IngestSeal(ctx, graph)
	if err != nil {
		return fmt.Errorf("seal: %w", err)
	}
	exact := g.Count()
	if sealed.Butterflies != exact {
		return fmt.Errorf("sealed count %d != offline count %d", sealed.Butterflies, exact)
	}
	fmt.Fprintf(out, "sealed %s v%d: %d butterflies (matches offline count)\n",
		sealed.Name, sealed.Version, sealed.Butterflies)
	return nil
}

func pickOp(rng *rand.Rand, weights [numOps]int) opKind {
	total := 0
	for _, w := range weights {
		total += w
	}
	r := rng.Intn(total)
	for op, w := range weights {
		if r < w {
			return opKind(op)
		}
		r -= w
	}
	return opCount
}

func parseMix(s string) ([numOps]int, error) {
	var weights [numOps]int
	any := false
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return weights, fmt.Errorf("bad -mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return weights, fmt.Errorf("bad -mix weight %q", part)
		}
		found := false
		for i, n := range opNames {
			if n == name {
				weights[i] = w
				found = true
				break
			}
		}
		if !found {
			return weights, fmt.Errorf("unknown -mix op %q (want %s)", name, strings.Join(opNames[:], "|"))
		}
		if w > 0 {
			any = true
		}
	}
	if !any {
		return weights, fmt.Errorf("-mix has no positive weights")
	}
	return weights, nil
}
