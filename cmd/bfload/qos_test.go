package main

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"butterfly/internal/serve"
)

func TestParseTenantMix(t *testing.T) {
	mix, err := parseTenantMix("gold:interactive:4, bronze:batch:1,free::2")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 {
		t.Fatalf("mix = %+v, want 3 entries", mix)
	}
	if mix[0] != (tenantSpec{name: "gold", priority: "interactive", weight: 4}) {
		t.Fatalf("mix[0] = %+v", mix[0])
	}
	if mix[2].priority != "" || mix[2].weight != 2 {
		t.Fatalf("empty priority entry = %+v", mix[2])
	}
	for _, bad := range []string{"gold:4", "gold:urgent:4", "gold:batch:0", "gold:batch:x", ","} {
		if _, err := parseTenantMix(bad); err == nil {
			t.Fatalf("parseTenantMix(%q) accepted", bad)
		}
	}
	if m, err := parseTenantMix("  "); err != nil || m != nil {
		t.Fatalf("blank mix = %+v, %v, want nil, nil", m, err)
	}
}

func TestPickTenantRespectsWeights(t *testing.T) {
	mix := []tenantSpec{
		{name: "a", priority: "interactive", weight: 1},
		{name: "b", priority: "batch", weight: 4},
	}
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[pickTenant(rng, mix).name]++
	}
	// b should land near 4/5 of the draws; a wide tolerance keeps this
	// deterministic-by-seed test honest without being flaky on reseed.
	if share := float64(counts["b"]) / 5000; share < 0.75 || share > 0.85 {
		t.Fatalf("b drew %.3f of requests, want ~0.8", share)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	in := []traceEntry{
		{Op: "count", Tenant: "gold", Priority: "interactive"},
		{Op: "estimate"},
		{Op: "peel", Tenant: "bronze", Priority: "batch"},
	}
	if err := writeTrace(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}

	// Bad traces fail before any load is sent.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"op":"teleport"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace(bad); err == nil {
		t.Fatal("trace with unknown op accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace(empty); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// TestRunTenantMixAndReplay drives a two-tenant mix against a real
// server, checks the per-tenant report section, then replays the
// recorded trace and checks the replay is acknowledged in the report.
func TestRunTenantMixAndReplay(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{
		Tenants: serve.TenantsConfig{
			Tenants: map[string]serve.TenantSpec{
				"gold":   {Weight: 4},
				"bronze": {Weight: 1},
			},
		},
	}))
	defer ts.Close()

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	jsonPath := filepath.Join(dir, "report.json")
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL,
		"-graph", "load",
		"-dataset", "occupations",
		"-scale", "50",
		"-n", "40",
		"-c", "4",
		"-mix", "count=1,estimate=1",
		"-tenant-mix", "gold:interactive:3,bronze:batch:1",
		"-record", tracePath,
		"-unique",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "per-tenant admission:") {
		t.Fatalf("missing per-tenant section:\n%s", out.String())
	}

	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.TenantMix == "" || len(rep.Tenants) != 2 {
		t.Fatalf("tenant report = mix %q, %d tenants (want 2): %+v",
			rep.TenantMix, len(rep.Tenants), rep.Tenants)
	}
	reqs, share := 0, 0.0
	for name, tr := range rep.Tenants {
		if tr.Requests == 0 {
			t.Fatalf("tenant %s issued no requests", name)
		}
		reqs += tr.Requests
		share += tr.AdmitShare
	}
	if reqs != 40 {
		t.Fatalf("per-tenant requests sum to %d, want 40", reqs)
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("admit shares sum to %.3f, want 1", share)
	}

	// The recorded trace replays the identical (op, tenant, priority)
	// sequence.
	entries, err := loadTrace(tracePath)
	if err != nil {
		t.Fatalf("recorded trace unreadable: %v", err)
	}
	if len(entries) != 40 {
		t.Fatalf("recorded %d entries, want 40", len(entries))
	}
	var out2 strings.Builder
	err = run([]string{
		"-addr", ts.URL,
		"-graph", "load2",
		"-dataset", "occupations",
		"-scale", "50",
		"-n", "40",
		"-c", "4",
		"-replay", tracePath,
		"-json", jsonPath,
	}, &out2)
	if err != nil {
		t.Fatalf("replay run: %v\noutput:\n%s", err, out2.String())
	}
	b, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 report
	if err := json.Unmarshal(b, &rep2); err != nil {
		t.Fatalf("bad replay report JSON: %v", err)
	}
	if rep2.Replayed != tracePath {
		t.Fatalf("replay report names %q, want %q", rep2.Replayed, tracePath)
	}
	if len(rep2.Tenants) != 2 {
		t.Fatalf("replay tenant report: %+v", rep2.Tenants)
	}
}
