package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"butterfly/client"
	"butterfly/internal/obsv"
)

// tenantSpec is one entry of -tenant-mix: requests are issued under
// this tenant and priority lane, in proportion to weight.
type tenantSpec struct {
	name     string
	priority string
	weight   int
}

// parseTenantMix parses "gold:interactive:4,bronze:batch:1". An empty
// priority segment ("gold::4") means the server default (interactive).
func parseTenantMix(s string) ([]tenantSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []tenantSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad -tenant-mix entry %q (want tenant:priority:weight)", part)
		}
		w, err := strconv.Atoi(fields[2])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -tenant-mix weight in %q", part)
		}
		if p := fields[1]; p != "" && p != "interactive" && p != "batch" {
			return nil, fmt.Errorf("bad -tenant-mix priority %q (want interactive|batch)", p)
		}
		out = append(out, tenantSpec{name: fields[0], priority: fields[1], weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenant-mix has no entries")
	}
	return out, nil
}

// pickTenant draws a tenant from the mix in proportion to weight.
func pickTenant(rng *rand.Rand, mix []tenantSpec) tenantSpec {
	total := 0
	for _, t := range mix {
		total += t.weight
	}
	r := rng.Intn(total)
	for _, t := range mix {
		if r < t.weight {
			return t
		}
		r -= t.weight
	}
	return mix[0]
}

// traceEntry is one line of a -record / -replay JSONL trace.
type traceEntry struct {
	Op       string `json:"op"`
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
}

// loadTrace reads a -replay trace, validating op names up front so a
// bad trace fails before any load is sent.
func loadTrace(path string) ([]traceEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open -replay trace: %w", err)
	}
	defer f.Close()
	var out []traceEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e traceEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", ln, err)
		}
		if _, err := opFromName(e.Op); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", ln, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-replay trace %s is empty", path)
	}
	return out, nil
}

// writeTrace writes a recorded run as a JSONL trace.
func writeTrace(path string, entries []traceEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func opFromName(name string) (opKind, error) {
	for i, n := range opNames {
		if n == name {
			return opKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown op %q (want %s)", name, strings.Join(opNames[:], "|"))
}

// clientCache hands out one client per (tenant, priority) identity, so
// every request carries the right QoS headers over a shared transport.
type clientCache struct {
	mu      sync.Mutex
	base    string
	plain   *client.Client
	clients map[string]*client.Client
}

func newClientCache(base string, plain *client.Client) *clientCache {
	return &clientCache{base: base, plain: plain, clients: map[string]*client.Client{}}
}

func (cc *clientCache) get(tenant, priority string) *client.Client {
	if tenant == "" && priority == "" {
		return cc.plain
	}
	key := tenant + "|" + priority
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.clients[key]; ok {
		return c
	}
	var opts []client.Option
	if tenant != "" {
		opts = append(opts, client.WithTenant(tenant))
	}
	if priority != "" {
		opts = append(opts, client.WithPriority(priority))
	}
	c := client.New(cc.base, opts...)
	cc.clients[key] = c
	return c
}

// tenantReport is the per-tenant section of the load report: how much
// of the run each tenant got through admission, and at what latency.
type tenantReport struct {
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Status429  int     `json:"status_429"`
	AdmitShare float64 `json:"admit_share"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
}

// tenantTally accumulates one tenant's outcomes during the run.
type tenantTally struct {
	requests int
	ok       int
	s429     int
	hist     *obsv.Histogram
}

func newTenantTally() *tenantTally {
	return &tenantTally{hist: obsv.NewHistogram(obsv.LatencyBuckets)}
}
