package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"butterfly/internal/serve"
)

// TestRunAgainstServer drives a small mixed workload against an
// in-process serve.Server and checks the report: every request
// accounted for, no 5xx, sane latency summary.
func TestRunAgainstServer(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}))
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL,
		"-graph", "load",
		"-dataset", "occupations",
		"-scale", "100",
		"-n", "60",
		"-c", "4",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Requests != 60 || rep.Server5xx != 0 {
		t.Fatalf("report = %+v, want 60 requests and no 5xx", rep)
	}
	total := 0
	for _, n := range rep.ByStatus {
		total += n
	}
	if total != 60 {
		t.Fatalf("status counts sum to %d, want 60", total)
	}
	if rep.ByStatus["200"] == 0 {
		t.Fatal("no successful requests")
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.Max < rep.LatencyMS.P50 {
		t.Fatalf("implausible latency summary: %+v", rep.LatencyMS)
	}
	if !strings.Contains(out.String(), "registered load") {
		t.Fatalf("missing register line in output:\n%s", out.String())
	}
}

// TestRunIngest streams the dataset through /v1/ingest instead of
// registering it, then runs a mutation-free mix so the report carries
// the estimate-accuracy summary.
func TestRunIngest(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}))
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL,
		"-graph", "st",
		"-dataset", "occupations",
		"-scale", "100",
		"-ingest", "-ingest-batch", "50", "-reservoir", "64",
		"-n", "40",
		"-c", "4",
		"-mix", "count=1,estimate=2",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"mid-load estimate", "sealed st v1", "estimate accuracy"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in output:\n%s", want, out.String())
		}
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Server5xx != 0 {
		t.Fatalf("report = %+v, want no 5xx", rep)
	}
	acc := rep.EstimateAccuracy
	if acc == nil || acc.Answers == 0 || acc.Exact <= 0 || acc.MaxRelErr < acc.MeanRelErr {
		t.Fatalf("estimate accuracy = %+v", acc)
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("count=3,mutate=1")
	if err != nil {
		t.Fatal(err)
	}
	if w[opCount] != 3 || w[opMutate] != 1 || w[opPeel] != 0 {
		t.Fatalf("weights = %v", w)
	}
	for _, bad := range []string{"", "count", "count=x", "bogus=1", "count=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}
