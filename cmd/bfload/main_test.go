package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"butterfly/internal/serve"
)

// TestRunAgainstServer drives a small mixed workload against an
// in-process serve.Server and checks the report: every request
// accounted for, no 5xx, sane latency summary.
func TestRunAgainstServer(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}))
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL,
		"-graph", "load",
		"-dataset", "occupations",
		"-scale", "100",
		"-n", "60",
		"-c", "4",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Requests != 60 || rep.Server5xx != 0 {
		t.Fatalf("report = %+v, want 60 requests and no 5xx", rep)
	}
	total := 0
	for _, n := range rep.ByStatus {
		total += n
	}
	if total != 60 {
		t.Fatalf("status counts sum to %d, want 60", total)
	}
	if rep.ByStatus["200"] == 0 {
		t.Fatal("no successful requests")
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.Max < rep.LatencyMS.P50 {
		t.Fatalf("implausible latency summary: %+v", rep.LatencyMS)
	}
	if !strings.Contains(out.String(), "registered load") {
		t.Fatalf("missing register line in output:\n%s", out.String())
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("count=3,mutate=1")
	if err != nil {
		t.Fatal(err)
	}
	if w[opCount] != 3 || w[opMutate] != 1 || w[opPeel] != 0 {
		t.Fatalf("weights = %v", w)
	}
	for _, bad := range []string{"", "count", "count=x", "bogus=1", "count=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}
