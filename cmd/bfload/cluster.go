package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Cluster mode (-cluster): besides driving load through the router at
// -addr, bfload scrapes every shard's /metrics before and after the
// run and reports how the router spread the work — per-shard request
// deltas with share percentages, and the ratio between the slowest
// and fastest shard's p99 (computed from the delta of each shard's
// bfserved_request_seconds histogram). A share far from 1/N or a p99
// skew well above 1 means placement is unbalanced.

// shardSample is one scrape of a shard's /metrics: the total finished
// requests and the cumulative latency-histogram buckets.
type shardSample struct {
	requests int64
	buckets  map[float64]int64 // le (seconds) -> cumulative count
}

// clusterReport is the per-shard distribution section of the -json
// report, present only with -cluster.
type clusterReport struct {
	Shards []shardLoad `json:"shards"`
	// MaxShare/MinShare bound the request distribution (each in
	// [0,1]; perfectly balanced = 1/len(Shards) each).
	MaxShare float64 `json:"max_share"`
	MinShare float64 `json:"min_share"`
	// P99Skew is slowest-shard p99 / fastest-shard p99 (≥ 1; 0 when a
	// shard saw no traffic).
	P99Skew float64 `json:"p99_skew"`
	// Router carries the partitioned fast-path counters scraped from
	// the router's own /metrics (nil when -addr is not a router or the
	// scrape failed).
	Router *routerStats `json:"router,omitempty"`
}

// routerSample is one scrape of the router's /metrics: the partial-
// cache and coalescing counters behind the partitioned fast path.
type routerSample struct {
	partialHits   int64 // bfrouter_partial_cache_hits_total, all kinds
	partialMisses int64 // bfrouter_partial_cache_misses_total, all reasons
	coalesced     int64 // bfrouter_coalesced_total
}

// routerStats is the run's delta of routerSample, as reported.
type routerStats struct {
	PartialCacheHits   int64 `json:"partial_cache_hits"`
	PartialCacheMisses int64 `json:"partial_cache_misses"`
	// PartialCacheHitRate = hits / (hits + misses), 0 when neither.
	PartialCacheHitRate float64 `json:"partial_cache_hit_rate"`
	Coalesced           int64   `json:"coalesced"`
	// CoalescedRate is coalesced joins per finished request in the
	// run — the fraction of the load that shared another request's
	// scatter-gather.
	CoalescedRate float64 `json:"coalesced_rate"`
}

type shardLoad struct {
	Shard    string  `json:"shard"`
	Requests int64   `json:"requests"`
	Share    float64 `json:"share"`
	P99MS    float64 `json:"p99_ms"`
}

// scrapeShard fetches and parses one shard's /metrics.
func scrapeShard(ctx context.Context, hc *http.Client, base string) (shardSample, error) {
	s := shardSample{buckets: map[float64]int64{}}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return s, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("%s/metrics: HTTP %d", base, resp.StatusCode)
	}
	return parseShardSample(resp.Body)
}

// parseShardSample reads Prometheus text format, keeping the two
// families the distribution report needs.
func parseShardSample(r io.Reader) (shardSample, error) {
	s := shardSample{buckets: map[float64]int64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, "{")
		if !ok {
			continue // label-free families (sums, counts) are not needed
		}
		labels, valStr, ok := strings.Cut(rest, "} ")
		if !ok {
			continue
		}
		switch name {
		case "bfserved_requests_total":
			v, err := strconv.ParseInt(strings.TrimSpace(valStr), 10, 64)
			if err != nil {
				return s, fmt.Errorf("bad counter line %q: %w", line, err)
			}
			s.requests += v
		case "bfserved_request_seconds_bucket":
			le := strings.TrimPrefix(labels, `le="`)
			le = strings.TrimSuffix(le, `"`)
			ub, err := strconv.ParseFloat(le, 64) // ParseFloat accepts "+Inf"
			if err != nil {
				return s, fmt.Errorf("bad bucket line %q", line)
			}
			v, err := strconv.ParseInt(strings.TrimSpace(valStr), 10, 64)
			if err != nil {
				return s, fmt.Errorf("bad bucket line %q: %w", line, err)
			}
			s.buckets[ub] = v
		}
	}
	return s, sc.Err()
}

// deltaP99 estimates the p99 (in ms) of the requests a shard handled
// between two scrapes, by linear interpolation inside the first
// histogram-delta bucket whose cumulative count crosses 99%.
func deltaP99(before, after shardSample) float64 {
	les := make([]float64, 0, len(after.buckets))
	for le := range after.buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	if len(les) == 0 {
		return 0
	}
	total := after.buckets[les[len(les)-1]] - before.buckets[les[len(les)-1]]
	if total <= 0 {
		return 0
	}
	target := 0.99 * float64(total)
	lower := 0.0
	var below int64
	for _, le := range les {
		cum := after.buckets[le] - before.buckets[le]
		if float64(cum) >= target {
			if math.IsInf(le, 1) {
				return lower * 1000 // open-ended bucket: report its floor
			}
			inBucket := cum - below
			if inBucket <= 0 {
				return le * 1000
			}
			frac := (target - float64(below)) / float64(inBucket)
			return (lower + frac*(le-lower)) * 1000
		}
		below = cum
		lower = le
	}
	return lower * 1000
}

// clusterSection reduces before/after scrapes into the report section.
// Shards are reported in the order given; a shard that failed to
// scrape (missing from either map) is reported with Requests -1.
func clusterSection(shards []string, before, after map[string]shardSample) *clusterReport {
	cr := &clusterReport{}
	var total int64
	for _, sh := range shards {
		b, okB := before[sh]
		a, okA := after[sh]
		if !okB || !okA {
			cr.Shards = append(cr.Shards, shardLoad{Shard: sh, Requests: -1})
			continue
		}
		load := shardLoad{
			Shard:    sh,
			Requests: a.requests - b.requests,
			P99MS:    deltaP99(b, a),
		}
		total += load.Requests
		cr.Shards = append(cr.Shards, load)
	}
	if total <= 0 {
		return cr
	}
	cr.MinShare = 1
	minP99, maxP99 := 0.0, 0.0
	for i := range cr.Shards {
		l := &cr.Shards[i]
		if l.Requests < 0 {
			continue
		}
		l.Share = float64(l.Requests) / float64(total)
		if l.Share > cr.MaxShare {
			cr.MaxShare = l.Share
		}
		if l.Share < cr.MinShare {
			cr.MinShare = l.Share
		}
		if l.P99MS > 0 {
			if minP99 == 0 || l.P99MS < minP99 {
				minP99 = l.P99MS
			}
			if l.P99MS > maxP99 {
				maxP99 = l.P99MS
			}
		}
	}
	if minP99 > 0 {
		cr.P99Skew = maxP99 / minP99
	}
	return cr
}

// scrapeRouter fetches and parses the router's /metrics, keeping the
// partitioned fast-path counters. A non-router -addr (single-node
// bfserved) simply has none of these families and parses to zeros.
func scrapeRouter(ctx context.Context, hc *http.Client, base string) (routerSample, error) {
	var s routerSample
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return s, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("%s/metrics: HTTP %d", base, resp.StatusCode)
	}
	return parseRouterSample(resp.Body)
}

// parseRouterSample reads Prometheus text format, summing the
// bfrouter partial-cache and coalescing counters across their label
// values (bfrouter_coalesced_total is label-free).
func parseRouterSample(r io.Reader) (routerSample, error) {
	var s routerSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
			if _, after, ok := strings.Cut(line, "} "); ok {
				valStr = after
			} else {
				continue
			}
		}
		var dst *int64
		switch name {
		case "bfrouter_partial_cache_hits_total":
			dst = &s.partialHits
		case "bfrouter_partial_cache_misses_total":
			dst = &s.partialMisses
		case "bfrouter_coalesced_total":
			dst = &s.coalesced
		default:
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(valStr), 10, 64)
		if err != nil {
			return s, fmt.Errorf("bad counter line %q: %w", line, err)
		}
		*dst += v
	}
	return s, sc.Err()
}

// routerSection reduces before/after router scrapes into the report.
func routerSection(before, after routerSample, requests int64) *routerStats {
	rs := &routerStats{
		PartialCacheHits:   after.partialHits - before.partialHits,
		PartialCacheMisses: after.partialMisses - before.partialMisses,
		Coalesced:          after.coalesced - before.coalesced,
	}
	if total := rs.PartialCacheHits + rs.PartialCacheMisses; total > 0 {
		rs.PartialCacheHitRate = float64(rs.PartialCacheHits) / float64(total)
	}
	if requests > 0 {
		rs.CoalescedRate = float64(rs.Coalesced) / float64(requests)
	}
	return rs
}

// scrapeAll scrapes every shard, tolerating individual failures (a
// shard killed mid-run must not fail the report).
func scrapeAll(ctx context.Context, hc *http.Client, shards []string, out io.Writer) map[string]shardSample {
	samples := make(map[string]shardSample, len(shards))
	for _, sh := range shards {
		s, err := scrapeShard(ctx, hc, sh)
		if err != nil {
			fmt.Fprintf(out, "  warning: scrape %s: %v\n", sh, err)
			continue
		}
		samples[sh] = s
	}
	return samples
}
