// Command bfbench regenerates the tables and figures of the paper's
// evaluation (Section V) plus this implementation's ablations.
//
// Tables:
//
//	fig9       dataset statistics and butterfly counts (paper Fig 9)
//	fig10      sequential runtimes, invariants 1–8 × datasets (Fig 10)
//	fig11      parallel runtimes with -threads workers (Fig 11)
//	partition  claim C1: the winning family follows the smaller side
//	sparsity   claim C2: sparser graphs count faster
//	lookahead  claim C3: look-ahead family members vs eager ones
//	blocked    blocked-variant block-size sweep
//	order      degree-ordering ablation (paper future work)
//	baselines  family vs wedge-hash / vertex-priority / SpGEMM
//	all        everything above
//
// By default the synthetic stand-ins are generated at the paper's full
// sizes (-scale 1); real KONECT files under -data <dir>/<name> are
// used when present. Use -scale 10 for a quick pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"butterfly/internal/bench"
	"butterfly/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bfbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bfbench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		table   = fs.String("table", "all", "fig9|fig10|fig11|balance|partition|sparsity|lookahead|blocked|order|baselines|dynamic|dist|peeling|estimators|significance|all")
		scale   = fs.Int("scale", 1, "dataset shrink factor (1 = paper-size)")
		threads = fs.Int("threads", 6, "workers for fig11 (the paper used 6)")
		dataDir = fs.String("data", "", "directory with real KONECT files (optional)")
		csvDir  = fs.String("csv", "", "also write fig9/fig10/fig11 as CSV files into this directory")
		repeat  = fs.Int("repeat", 1, "min-of-N timing per fig10/fig11 cell")
		jsonOut = fs.String("json", "", "write machine-readable results (JSON) to this file, or - for stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := gen.PaperDatasetNames()

	if *jsonOut != "" {
		rep, err := bench.JSONBench(names, *dataDir, *scale, []int{1, *threads}, *repeat)
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			if err := bench.WriteJSON(out, rep); err != nil {
				return err
			}
		} else {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			if err := bench.WriteJSON(f, rep); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %d results to %s\n", len(rep.Results), *jsonOut)
		}
		// -json without an explicit -table emits only the JSON report;
		// pass -table to combine both outputs.
		explicitTable := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "table" {
				explicitTable = true
			}
		})
		if !explicitTable {
			return nil
		}
	}

	want := func(t string) bool { return *table == t || *table == "all" }
	ran := false

	if want("fig9") {
		ran = true
		section(out, "Fig 9: dataset statistics")
		rows, err := bench.Fig9(names, *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintFig9(out, rows)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "fig9.csv", func(w io.Writer) error {
				return bench.WriteFig9CSV(w, rows)
			}); err != nil {
				return err
			}
		}
	}
	if want("fig10") {
		ran = true
		section(out, "Fig 10: sequential runtimes (s), invariants 1–8")
		grid, err := bench.TimingGridRepeat(names, *dataDir, *scale, 1, *repeat)
		if err != nil {
			return err
		}
		bench.PrintTimingTable(out, grid)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "fig10.csv", func(w io.Writer) error {
				return bench.WriteTimingCSV(w, grid)
			}); err != nil {
				return err
			}
		}
	}
	if want("fig11") {
		ran = true
		section(out, fmt.Sprintf("Fig 11: parallel runtimes (s), %d threads", *threads))
		grid, err := bench.TimingGridRepeat(names, *dataDir, *scale, *threads, *repeat)
		if err != nil {
			return err
		}
		bench.PrintTimingTable(out, grid)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "fig11.csv", func(w io.Writer) error {
				return bench.WriteTimingCSV(w, grid)
			}); err != nil {
				return err
			}
		}
	}
	if want("partition") {
		ran = true
		section(out, "Claim C1: partition the smaller vertex side")
		budget, edges := 200000/max(1, *scale), int64(600000/max(1, *scale))
		pts := bench.PartitionSweep(budget, edges, []float64{0.1, 0.25, 0.5, 0.75, 0.9}, 41)
		bench.PrintPartitionSweep(out, pts)
	}
	if want("sparsity") {
		ran = true
		section(out, "Claim C2: edge sparsity (fixed vertex sets)")
		m, n := 56519/max(1, *scale), 120867/max(1, *scale)
		base := int64(440237 / max(1, *scale))
		pts := bench.SparsitySweep(m, n, []int64{base / 8, base / 4, base / 2, base}, 42)
		bench.PrintSparsitySweep(out, pts)
	}
	if want("balance") {
		ran = true
		section(out, fmt.Sprintf("Fig 11 substitute: simulated work balance (%d workers)", *threads))
		rows, err := bench.BalanceTable(names, *dataDir, *scale, *threads)
		if err != nil {
			return err
		}
		bench.PrintBalance(out, rows)
	}
	if want("lookahead") {
		ran = true
		section(out, "Claim C3: look-ahead vs eager family members")
		rows, err := bench.LookAheadAblation(names, *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintLookAhead(out, rows)
	}
	if want("blocked") {
		ran = true
		section(out, "Ablation: blocked variants (occupations stand-in)")
		g, err := bench.LoadDataset("occupations", *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintBlocked(out, bench.BlockedAblation(g, []int{1, 16, 64, 256, 1024, 4096}))
	}
	if want("order") {
		ran = true
		section(out, "Ablation: degree ordering (github stand-in)")
		g, err := bench.LoadDataset("github", *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintOrder(out, bench.OrderAblation(g))
	}
	if want("dist") {
		ran = true
		section(out, "Dataset characterization: degree skew and wedge work")
		rows, err := bench.DistTable(names, *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintDist(out, rows)
	}
	if want("peeling") {
		ran = true
		section(out, "Section IV: peeling variants (arxiv-cond-mat stand-in, k=2)")
		g, err := bench.LoadDataset("arxiv-cond-mat", *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintPeeling(out, bench.PeelingComparison(g, 2, *threads))
	}
	if want("estimators") {
		ran = true
		section(out, "Extension: estimator accuracy vs time (github stand-in)")
		g, err := bench.LoadDataset("github", *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintEstimators(out, bench.EstimatorComparison(g, 5000, 0.25, 44))
	}
	if want("significance") {
		ran = true
		section(out, "Extension: butterfly significance vs degree-preserving null model")
		rows, err := bench.SignificanceTable(names, *dataDir, *scale, 5, 5, 45)
		if err != nil {
			return err
		}
		bench.PrintSignificance(out, rows)
	}
	if want("dynamic") {
		ran = true
		section(out, "Extension: dynamic counter throughput (producers stand-in)")
		g, err := bench.LoadDataset("producers", *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintDynamic(out, bench.DynamicThroughput(g, 20000/max(1, *scale/4+1)+100, 43))
	}
	if want("baselines") {
		ran = true
		section(out, "Ablation: baselines (arxiv-cond-mat stand-in)")
		g, err := bench.LoadDataset("arxiv-cond-mat", *dataDir, *scale)
		if err != nil {
			return err
		}
		bench.PrintBaselines(out, bench.BaselineComparison(g))
	}

	if !ran {
		return fmt.Errorf("unknown -table %q", *table)
	}
	return nil
}

func writeCSV(dir, name string, fn func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n== %s ==\n", title)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
