package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig9(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "fig9", "-scale", "200"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 9", "arxiv-cond-mat", "github", "Butterflies (paper)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in: %q", want, out)
		}
	}
}

func TestRunFig10And11(t *testing.T) {
	for _, table := range []string{"fig10", "fig11"} {
		var sb strings.Builder
		if err := run([]string{"-table", table, "-scale", "200", "-threads", "2"}, &sb); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		if !strings.Contains(out, "Inv1") || !strings.Contains(out, "Inv8") {
			t.Fatalf("%s: missing invariant columns: %q", table, out)
		}
	}
}

func TestRunBalance(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "balance", "-scale", "100", "-threads", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "max/mean") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunSweepsAndAblations(t *testing.T) {
	for table, marker := range map[string]string{
		"partition": "winner",
		"sparsity":  "density",
		"lookahead": "speedup",
		"blocked":   "unblocked",
		"order":     "degree-desc",
		"baselines": "vertex-priority",
	} {
		var sb strings.Builder
		if err := run([]string{"-table", table, "-scale", "400"}, &sb); err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		if !strings.Contains(sb.String(), marker) {
			t.Fatalf("%s: missing %q in %q", table, marker, sb.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "nope"}, &sb); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunDynamic(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "dynamic", "-scale", "200"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "updates/s") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunDistAndPeeling(t *testing.T) {
	for table, marker := range map[string]string{
		"dist":    "Gini",
		"peeling": "tip-numbers-rounds",
	} {
		var sb strings.Builder
		if err := run([]string{"-table", table, "-scale", "200"}, &sb); err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		if !strings.Contains(sb.String(), marker) {
			t.Fatalf("%s: missing %q in %q", table, marker, sb.String())
		}
	}
}

func TestRunEstimators(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "estimators", "-scale", "200"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rel. error") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-table", "fig9", "-scale", "200", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "dataset,v1,v2,") {
		t.Fatalf("CSV: %q", string(data)[:40])
	}
	if err := run([]string{"-table", "fig10", "-scale", "400", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig10.csv")); err != nil {
		t.Fatal(err)
	}
	// Bad directory errors.
	if err := run([]string{"-table", "fig9", "-scale", "400", "-csv", "/no/such/dir"}, &sb); err == nil {
		t.Fatal("bad csv dir accepted")
	}
}

func TestRunSignificance(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "significance", "-scale", "300"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "z-score") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunJSONStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-json", "-", "-scale", "400", "-threads", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var rep struct {
		Schema  string `json:"schema"`
		Scale   int    `json:"scale"`
		Results []struct {
			Dataset   string  `json:"dataset"`
			Algorithm string  `json:"algorithm"`
			Invariant string  `json:"invariant"`
			Threads   int     `json:"threads"`
			NsPerOp   int64   `json:"ns_per_op"`
			Count     int64   `json:"count"`
			Agg       string  `json:"agg"`
			AggUsed   string  `json:"agg_used"`
			MaxDeg    int     `json:"max_deg"`
			MeanDeg   float64 `json:"mean_deg"`
			V2Width   int     `json:"v2_width"`
			Estimate  float64 `json:"estimate"`
			Samples   int     `json:"samples"`
			RelErr    float64 `json:"rel_err"`
			Speedup   float64 `json:"speedup_vs_exact"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v in %q", err, out)
	}
	if rep.Schema != "bfbench/v4" || rep.Scale != 400 {
		t.Fatalf("header wrong: %+v", rep)
	}
	algos := map[string]bool{}
	// Peeling checksums must agree across engines and thread counts —
	// the snapshot doubles as a differential test. Likewise the
	// family/agg counts across aggregation modes.
	peelSums := map[string]map[int64]bool{}
	aggCounts := map[string]map[int64]bool{}
	aggModes := map[string]map[string]bool{}
	for _, r := range rep.Results {
		algos[r.Algorithm] = true
		if r.NsPerOp < 0 || r.Dataset == "" || r.Invariant == "" || r.Threads < 1 {
			t.Fatalf("malformed result %+v", r)
		}
		if strings.HasPrefix(r.Algorithm, "peel-") {
			key := r.Dataset + "|" + strings.SplitN(r.Algorithm, "/", 2)[0]
			if peelSums[key] == nil {
				peelSums[key] = map[int64]bool{}
			}
			peelSums[key][r.Count] = true
		}
		if r.Algorithm == "family/agg" {
			if r.AggUsed == "" || r.AggUsed == "auto" {
				t.Fatalf("family/agg row must name a concrete mode: %+v", r)
			}
			if r.Agg != "auto" && r.AggUsed != r.Agg {
				t.Fatalf("explicit mode not honored: %+v", r)
			}
			if r.MaxDeg <= 0 || r.MeanDeg <= 0 || r.V2Width <= 0 {
				t.Fatalf("family/agg row missing degree profile: %+v", r)
			}
			if aggCounts[r.Dataset] == nil {
				aggCounts[r.Dataset] = map[int64]bool{}
				aggModes[r.Dataset] = map[string]bool{}
			}
			aggCounts[r.Dataset][r.Count] = true
			aggModes[r.Dataset][r.Agg] = true
		}
		if strings.HasPrefix(r.Algorithm, "estimate/") {
			if r.Invariant != "fixed" && r.Invariant != "adaptive" && r.Invariant != "stream" {
				t.Fatalf("estimate row with unknown budget label: %+v", r)
			}
			if r.Samples <= 0 || r.Estimate < 0 || r.Speedup <= 0 || r.RelErr < 0 {
				t.Fatalf("malformed estimate row: %+v", r)
			}
		}
	}
	for _, want := range []string{
		"family/seq", "family/arena", "family/parallel", "family/agg",
		"estimate/vertices", "estimate/edges", "estimate/reservoir",
		"peel-tip/delta", "peel-tip/recount", "peel-wing/delta", "peel-wing/recount",
	} {
		if !algos[want] {
			t.Fatalf("missing algorithm %q in results", want)
		}
	}
	for key, sums := range peelSums {
		if len(sums) != 1 {
			t.Fatalf("peel checksum disagreement for %s: %v", key, sums)
		}
	}
	for ds, counts := range aggCounts {
		if len(counts) != 1 {
			t.Fatalf("aggregation modes disagree on %s: %v", ds, counts)
		}
		for _, mode := range []string{"auto", "sort", "hash", "hist", "batch"} {
			if !aggModes[ds][mode] {
				t.Fatalf("dataset %s missing family/agg row for mode %q", ds, mode)
			}
		}
	}
	// Plain -json must not print the text tables.
	if strings.Contains(out, "== ") {
		t.Fatal("-json alone still printed text tables")
	}
}

func TestRunJSONFileWithTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var sb strings.Builder
	if err := run([]string{"-json", path, "-table", "fig9", "-scale", "400"}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("written file is not valid JSON")
	}
	// Explicit -table keeps the text output too.
	if !strings.Contains(sb.String(), "Fig 9") {
		t.Fatal("-json with explicit -table dropped the table output")
	}
}
