package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"butterfly/client"
	"butterfly/serveapi"
)

// TestRunServeAndShutdown boots the daemon on an ephemeral port with a
// preloaded dataset, exercises the API end to end, then delivers
// SIGTERM and checks the graceful drain path returns cleanly.
func TestRunServeAndShutdown(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-preload", "occupations@100",
			"-drain", "5s",
		}, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New("http://" + addr)

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	if h.Graphs != 1 {
		t.Fatalf("preload registered %d graphs, want 1", h.Graphs)
	}
	info, err := c.GraphInfo(ctx, "occupations")
	if err != nil {
		t.Fatalf("graph info: %v", err)
	}
	resp, err := c.Count(ctx, "occupations", serveapi.CountRequest{Threads: -1})
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if resp.Butterflies != info.Butterflies {
		t.Fatalf("count %d != preload count %d", resp.Butterflies, info.Butterflies)
	}

	// Graceful shutdown: the run goroutine catches SIGTERM, drains and
	// returns nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
}

// startDaemon boots run() in a goroutine and returns its address plus
// the exit channel.
func startDaemon(t *testing.T, args []string) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(args, ready) }()
	select {
	case addr := <-ready:
		return addr, done
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	panic("unreachable")
}

// stopDaemon delivers SIGTERM and waits for a clean exit.
func stopDaemon(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
}

// TestRunDurableRestart is the daemon-level durability contract: boot
// with -data-dir, mutate a preloaded graph, restart over the same
// directory, and the second process must serve the identical count at
// the identical (graph, version) — with the preload skipped in favor
// of the recovered state.
func TestRunDurableRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-preload", "occupations@100",
		"-data-dir", dir,
		"-fsync", "never", // durability semantics, not disk stamina
		"-drain", "5s",
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	addr, done := startDaemon(t, args)
	c := client.New("http://" + addr)
	mut, err := c.Mutate(ctx, "occupations", serveapi.MutateRequest{
		Deletes: [][2]int{{0, 0}, {1, 1}},
	})
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if mut.Version != 2 {
		t.Fatalf("mutate produced v%d, want v2", mut.Version)
	}
	want, err := c.GraphInfo(ctx, "occupations")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, serveapi.RegisterRequest{
		Name: "inline", M: 2, N: 2, Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
	}); err != nil {
		t.Fatalf("register inline: %v", err)
	}
	stopDaemon(t, done)

	// Second life. Same -preload: it must be skipped because the
	// recovered (mutated) graph is the acknowledged one.
	addr2, done2 := startDaemon(t, args)
	defer stopDaemon(t, done2)
	c2 := client.New("http://" + addr2)
	got, err := c2.GraphInfo(ctx, "occupations")
	if err != nil {
		t.Fatalf("occupations lost across restart: %v", err)
	}
	if got != want {
		t.Fatalf("restart state differs:\n got %+v\nwant %+v", got, want)
	}
	cnt, err := c2.Count(ctx, "occupations", serveapi.CountRequest{Threads: -1})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Butterflies != want.Butterflies || cnt.Version != want.Version {
		t.Fatalf("recovered count %d @ v%d, want %d @ v%d",
			cnt.Butterflies, cnt.Version, want.Butterflies, want.Version)
	}
	inline, err := c2.GraphInfo(ctx, "inline")
	if err != nil || inline.Butterflies != 1 {
		t.Fatalf("inline graph: %+v, %v (want 1 butterfly)", inline, err)
	}
	if _, err := c2.Checkpoint(ctx); err != nil {
		t.Fatalf("admin checkpoint on durable daemon: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-preload", "occupations@zero", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("bad -preload scale accepted")
	}
	if err := run([]string{"-preload", "no-such-dataset", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("unknown -preload dataset accepted")
	}
	if err := run([]string{"-data-dir", t.TempDir(), "-fsync", "sometimes", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("bad -fsync policy accepted")
	}
}

// TestRunTenantsAndLegacyFlags boots the daemon with a -tenants file
// and -disable-legacy: requests are charged under the configured
// tenant (echoed back), the config is live on /admin/tenants, and the
// deprecated unversioned routes answer 410 Gone.
func TestRunTenantsAndLegacyFlags(t *testing.T) {
	tf := t.TempDir() + "/tenants.json"
	if err := os.WriteFile(tf, []byte(`{
		"default": {"weight": 1},
		"tenants": {"gold": {"rate": 100, "burst": 10, "weight": 4, "slo_ms": 100}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-preload", "occupations@50",
			"-tenants", tf,
			"-disable-legacy",
			"-drain", "5s",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	c := client.New(base, client.WithTenant("gold"), client.WithPriority("batch"))
	if _, err := c.Count(ctx, "occupations", serveapi.CountRequest{}); err != nil {
		t.Fatalf("count as gold: %v", err)
	}
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/graphs/occupations/count", strings.NewReader(`{}`))
	req.Header.Set(serveapi.TenantHeader, "gold")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(serveapi.TenantHeader); got != "gold" {
		t.Errorf("echoed tenant = %q, want gold", got)
	}

	// The file config is live on the admin endpoint.
	areq, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/admin/tenants", nil)
	aresp, err := http.DefaultClient.Do(areq)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := io.ReadAll(aresp.Body)
	aresp.Body.Close()
	if !strings.Contains(string(ab), `"gold"`) {
		t.Errorf("/admin/tenants missing configured tenant: %s", ab)
	}

	// Legacy surface is sunset.
	lreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/graphs/occupations/count", strings.NewReader(`{}`))
	lresp, err := http.DefaultClient.Do(lreq)
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusGone {
		t.Errorf("legacy route status = %d, want 410", lresp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server never drained")
	}
}

// TestLoadTenantsRejectsTypos: unknown fields in the -tenants file
// fail at startup rather than silently degrading to default QoS.
func TestLoadTenantsRejectsTypos(t *testing.T) {
	tf := t.TempDir() + "/tenants.json"
	if err := os.WriteFile(tf, []byte(`{"tenants": {"a": {"wieght": 4}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTenants(tf); err == nil {
		t.Fatal("typo'd tenant config accepted")
	}
	if _, err := loadTenants(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing tenant file accepted")
	}
}
