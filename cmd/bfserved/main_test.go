package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"

	"butterfly/client"
	"butterfly/serveapi"
)

// TestRunServeAndShutdown boots the daemon on an ephemeral port with a
// preloaded dataset, exercises the API end to end, then delivers
// SIGTERM and checks the graceful drain path returns cleanly.
func TestRunServeAndShutdown(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-preload", "occupations@100",
			"-drain", "5s",
		}, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New("http://" + addr)

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	if h.Graphs != 1 {
		t.Fatalf("preload registered %d graphs, want 1", h.Graphs)
	}
	info, err := c.GraphInfo(ctx, "occupations")
	if err != nil {
		t.Fatalf("graph info: %v", err)
	}
	resp, err := c.Count(ctx, "occupations", serveapi.CountRequest{Threads: -1})
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if resp.Butterflies != info.Butterflies {
		t.Fatalf("count %d != preload count %d", resp.Butterflies, info.Butterflies)
	}

	// Graceful shutdown: the run goroutine catches SIGTERM, drains and
	// returns nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-preload", "occupations@zero", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("bad -preload scale accepted")
	}
	if err := run([]string{"-preload", "no-such-dataset", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("unknown -preload dataset accepted")
	}
}
