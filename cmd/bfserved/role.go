package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"butterfly/internal/cluster"
)

// roleConfig is the validated cluster identity of this process.
type roleConfig struct {
	role     string   // "single", "shard", or "router"
	shards   []string // router only: shard base URLs
	replicas int      // router only: read replicas per graph
	vnodes   int      // router only: ring points per shard (0 = default)
}

// validateRole checks the cluster flag combination before anything
// heavier runs. The rules: -role must be single|shard|router; a
// router requires -shards (absolute http(s) URLs) and owns no data of
// its own, so the storage/preload flags are rejected; single and
// shard daemons don't take placement flags. Defaults (replicas=1,
// vnodes=0) are always fine so plain `bfserved` keeps working.
func validateRole(role, shards string, replicas, vnodes int, dataDir, preload string) (roleConfig, error) {
	rc := roleConfig{role: role, replicas: replicas, vnodes: vnodes}
	switch role {
	case "single", "shard":
		if shards != "" {
			return rc, fmt.Errorf("-shards only applies to -role=router (got -role=%s)", role)
		}
		if replicas != 1 {
			return rc, fmt.Errorf("-replicas only applies to -role=router (got -role=%s)", role)
		}
		if vnodes != 0 {
			return rc, fmt.Errorf("-vnodes only applies to -role=router (got -role=%s)", role)
		}
	case "router":
		if shards == "" {
			return rc, errors.New("-role=router requires -shards (comma-separated shard base URLs)")
		}
		for _, s := range strings.Split(shards, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			u, err := url.Parse(s)
			if err != nil || !u.IsAbs() || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
				return rc, fmt.Errorf("bad -shards entry %q: want an absolute http(s) URL like http://10.0.0.1:8080", s)
			}
			rc.shards = append(rc.shards, strings.TrimRight(s, "/"))
		}
		if len(rc.shards) == 0 {
			return rc, errors.New("-shards is empty after parsing (want comma-separated shard base URLs)")
		}
		if replicas < 1 {
			return rc, fmt.Errorf("-replicas must be >= 1 (got %d)", replicas)
		}
		if vnodes < 0 {
			return rc, fmt.Errorf("-vnodes must be >= 0 (got %d)", vnodes)
		}
		if dataDir != "" {
			return rc, errors.New("-data-dir does not apply to -role=router: the router is stateless, shards own the data")
		}
		if preload != "" {
			return rc, errors.New("-preload does not apply to -role=router: register graphs through the router API instead")
		}
	default:
		return rc, fmt.Errorf("unknown -role %q (want single, shard, or router)", role)
	}
	return rc, nil
}

// runRouter is the -role=router serving path: no registry, no store —
// just the cluster router proxying /v1 to the shards in -shards.
func runRouter(rc roleConfig, addr string, drainWait time.Duration, ready chan<- string) error {
	rt, err := cluster.New(cluster.Config{
		Shards:   rc.shards,
		Replicas: rc.replicas,
		VNodes:   rc.vnodes,
	})
	if err != nil {
		return err
	}

	// Learn what the shards already hold (graphs registered by a
	// previous router, or recovered from their WALs). Failure is not
	// fatal: shards may still be booting, and Refresh happens lazily
	// via /admin/rebalance or re-registration too.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := rt.Refresh(ctx); err != nil {
		log.Printf("warning: shard inventory incomplete at startup: %v", err)
	}
	cancel()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("bfserved router listening on %s (shards=%d replicas=%d)",
		ln.Addr(), len(rc.shards), rc.replicas)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v, draining (up to %s)", sig, drainWait)
		rt.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		log.Printf("drained, exiting")
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
