// Command bfserved is the butterfly query daemon: a JSON-over-HTTP
// service over a registry of named bipartite graphs, with exact
// counts (the whole algorithm family), per-vertex and per-edge
// counts, sampling estimators, k-tip/k-wing peeling, and batch edge
// mutations applied through the dynamic counter with copy-on-write
// versioned snapshots.
//
// The approximate tier: POST /v1/ingest opens a graph in the loading
// state and streams NDJSON edge batches through a fixed-memory
// reservoir estimator (-reservoir sets the default capacity), so
// /v1/estimate answers with error bars while the graph loads; sealing
// promotes it to a normal exact-countable graph. Registered graphs
// answer /v1/estimate by adaptive sampling, and an overloaded
// /v1/count?degrade=estimate degrades to an estimate instead of a 429.
//
// Production machinery: per-request deadlines threaded into the
// counting loops, a concurrency limiter with a bounded queue (429
// load-shedding), an LRU result cache keyed by (graph, version,
// query), /healthz and Prometheus-format /metrics, and graceful
// shutdown that drains in-flight work on SIGINT/SIGTERM.
//
// With -data-dir the registry is durable: every register/mutate/drop
// is appended to a checksummed write-ahead log before it is published
// (group-committed fsyncs under -fsync always), graphs are
// checkpointed into CRC32C-checksummed snapshots when the WAL
// outgrows -checkpoint-bytes (or on POST /admin/checkpoint), and a
// restart — graceful or kill -9 — recovers every graph to the exact
// (version, count) it last acked.
//
// Multi-node mode: `-role=shard` daemons hold the graphs while a
// stateless `-role=router` places graphs on shards with a
// consistent-hash ring, proxies the /v1 surface, and merges per-shard
// wedge partials into exact cross-shard butterfly counts (graphs
// registered with "partitions": P split across shards). See
// docs/CLUSTER.md.
//
// Examples:
//
//	bfserved -addr :8080 -preload occupations@10
//	bfserved -addr :8080 -role=router -shards http://10.0.0.1:9001,http://10.0.0.2:9001
//	bfserved -addr :8080 -data-dir /var/lib/bfserved -fsync always
//	bfserved -addr :8080 -max-inflight 8 -queue 32 -timeout 10s
//	curl -s localhost:8080/graphs/occupations/count -d '{"threads": -1}'
//
// See docs/SERVING.md for the API reference and tuning guide.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"butterfly"
	"butterfly/internal/serve"
	"butterfly/internal/store"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "bfserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until shutdown. If ready is
// non-nil it receives the bound address once the listener is up
// (tests bind :0 and need the port).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("bfserved", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		maxInflight = fs.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 0, "max queued requests before shedding 429s (0 = 4x max-inflight, -1 = no queue)")
		cacheSize   = fs.Int("cache", 1024, "result cache entries (0 disables)")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = fs.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeout_ms")
		drainWait   = fs.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
		preload     = fs.String("preload", "", "comma-separated synthetic datasets to register at startup, each name[@scale]")
		pathLoad    = fs.Bool("allow-path-load", false, "allow registering graphs from server-side file paths")
		dataDir     = fs.String("data-dir", "", "durable storage directory (empty = in-memory only; see docs/SERVING.md \"Durability\")")
		fsyncMode   = fs.String("fsync", "always", "WAL flush policy: always|interval|never (needs -data-dir)")
		fsyncEvery  = fs.Duration("fsync-interval", 100*time.Millisecond, "background flush period for -fsync interval")
		ckptBytes   = fs.Int64("checkpoint-bytes", 64<<20, "WAL size that triggers a background checkpoint (-1 disables; needs -data-dir)")
		reservoir   = fs.Int("reservoir", 0, "default reservoir capacity for /v1/ingest streams (0 = 65536 edges)")
		pprofOn     = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slowMS      = fs.Int("slow-query-ms", -1, "log requests at or above this many ms as JSON lines (0 logs every request, -1 disables)")
		slowLog     = fs.String("slow-query-log", "", "slow-query log file (empty = stderr; needs -slow-query-ms >= 0)")
		role        = fs.String("role", "single", "cluster role: single|shard|router (see docs/CLUSTER.md)")
		shards      = fs.String("shards", "", "router only: comma-separated shard base URLs (http://host:port)")
		replicas    = fs.Int("replicas", 1, "router only: shards holding a read copy of each graph")
		vnodes      = fs.Int("vnodes", 0, "router only: consistent-hash points per shard (0 = default)")
		tenantsFile = fs.String("tenants", "", "JSON tenant QoS config file (see docs/QOS.md; hot-reload via POST /admin/tenants)")
		noLegacy    = fs.Bool("disable-legacy", false, "answer 410 Gone on the deprecated unversioned routes (see docs/SERVING.md \"Legacy sunset\")")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rc, err := validateRole(*role, *shards, *replicas, *vnodes, *dataDir, *preload)
	if err != nil {
		return err
	}
	if rc.role == "router" {
		return runRouter(rc, *addr, *drainWait, ready)
	}

	cfg := serve.Config{
		Role:             rc.role,
		MaxInFlight:      *maxInflight,
		MaxQueue:         *queue,
		NoQueue:          *queue < 0,
		CacheEntries:     *cacheSize,
		NoCache:          *cacheSize <= 0,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		AllowPathLoad:    *pathLoad,
		EnablePprof:      *pprofOn,
		DefaultReservoir: *reservoir,
		DisableLegacy:    *noLegacy,
	}
	if *tenantsFile != "" {
		tcfg, err := loadTenants(*tenantsFile)
		if err != nil {
			return err
		}
		cfg.Tenants = tcfg
		log.Printf("tenant QoS config %s: %d named tenant(s)", *tenantsFile, len(tcfg.Tenants))
	}
	if *slowMS >= 0 {
		cfg.SlowQueryThreshold = time.Duration(*slowMS) * time.Millisecond
		if *slowLog == "" {
			cfg.SlowQueryLog = os.Stderr
		} else {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("open slow-query log: %w", err)
			}
			defer f.Close()
			cfg.SlowQueryLog = f
			log.Printf("slow-query log: %s (threshold %dms)", *slowLog, *slowMS)
		}
	}

	// Durable mode: open the store (running crash recovery — newest
	// valid snapshots plus the WAL tail, torn records truncated), then
	// adopt every recovered graph at the exact (graph, version) it had
	// when the previous process died.
	var st *store.Store
	var recovered []store.Recovered
	if *dataDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		start := time.Now()
		st, recovered, err = store.Open(*dataDir, store.Options{
			Fsync:           policy,
			FsyncInterval:   *fsyncEvery,
			CheckpointBytes: *ckptBytes,
			Logf:            log.Printf,
		})
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", *dataDir, err)
		}
		defer st.Close()
		cfg.Store = st
		log.Printf("data dir %s: recovered %d graph(s), wal %d bytes, fsync=%s (%.3fs)",
			*dataDir, len(recovered), st.WALSize(), policy, time.Since(start).Seconds())
	}
	srv := serve.New(cfg)
	defer srv.Close()

	for _, rec := range recovered {
		sn, err := srv.Registry().Adopt(rec.Name, rec.Counter, rec.Version)
		if err != nil {
			return fmt.Errorf("adopt recovered graph %q: %w", rec.Name, err)
		}
		log.Printf("recovered %s v%d from %s (+%d wal batch(es)): %s, %d butterflies",
			rec.Name, sn.Version, rec.Source, rec.Replayed, sn.Graph, sn.Count)
	}

	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			name, scale := strings.TrimSpace(spec), 1
			if at := strings.IndexByte(name, '@'); at >= 0 {
				n, err := strconv.Atoi(name[at+1:])
				if err != nil || n < 1 {
					return fmt.Errorf("bad -preload entry %q (want name[@scale])", spec)
				}
				name, scale = name[:at], n
			}
			// A recovered graph takes precedence over its preload: the
			// durable version (with every mutation it absorbed) is the
			// one the previous process acked.
			if _, err := srv.Registry().Get(name); err == nil {
				log.Printf("preload %s: already recovered from %s, skipping", name, *dataDir)
				continue
			}
			start := time.Now()
			g, err := butterfly.GeneratePaperDataset(name, scale)
			if err != nil {
				return fmt.Errorf("preload %q: %w", spec, err)
			}
			sn, err := srv.Registry().Register(name, g, false)
			if err != nil {
				return fmt.Errorf("preload %q: %w", spec, err)
			}
			log.Printf("preloaded %s v%d: %s, %d butterflies (%.2fs)",
				name, sn.Version, sn.Graph, sn.Count, time.Since(start).Seconds())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("bfserved listening on %s (max-inflight=%d queue=%d cache=%d timeout=%s)",
		ln.Addr(), *maxInflight, *queue, *cacheSize, *timeout)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: flip /healthz to draining (load balancers
	// stop routing), then let Shutdown drain in-flight requests up to
	// -drain before forcing the listener closed.
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v, draining (up to %s)", sig, *drainWait)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		log.Printf("drained, exiting")
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// loadTenants parses a -tenants JSON file into the QoS admission
// config. Unknown fields are rejected so a typo (say "wieght") fails
// at startup instead of silently running with default scheduling.
func loadTenants(path string) (serve.TenantsConfig, error) {
	var cfg serve.TenantsConfig
	f, err := os.Open(path)
	if err != nil {
		return cfg, fmt.Errorf("open -tenants file: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("parse -tenants file %s: %w", path, err)
	}
	return cfg, nil
}
