package main

import (
	"context"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"butterfly/client"
	"butterfly/serveapi"
)

func TestValidateRole(t *testing.T) {
	for _, tc := range []struct {
		name     string
		role     string
		shards   string
		replicas int
		vnodes   int
		dataDir  string
		preload  string
		wantErr  string // substring, "" = ok
	}{
		{name: "single default", role: "single", replicas: 1},
		{name: "shard", role: "shard", replicas: 1},
		{name: "router two shards", role: "router", shards: "http://a:1,http://b:2", replicas: 1},
		{name: "router trims slash and space", role: "router", shards: " http://a:1/ , http://b:2 ", replicas: 2},
		{name: "router replicas vnodes", role: "router", shards: "http://a:1", replicas: 3, vnodes: 128},
		{name: "unknown role", role: "primary", replicas: 1, wantErr: "unknown -role"},
		{name: "router without shards", role: "router", replicas: 1, wantErr: "requires -shards"},
		{name: "router empty shard list", role: "router", shards: " , ", replicas: 1, wantErr: "empty after parsing"},
		{name: "router relative shard url", role: "router", shards: "localhost:8080", replicas: 1, wantErr: "absolute http(s) URL"},
		{name: "router ftp shard url", role: "router", shards: "ftp://a:1", replicas: 1, wantErr: "absolute http(s) URL"},
		{name: "router zero replicas", role: "router", shards: "http://a:1", replicas: 0, wantErr: "-replicas must be"},
		{name: "router negative vnodes", role: "router", shards: "http://a:1", replicas: 1, vnodes: -1, wantErr: "-vnodes must be"},
		{name: "router with data dir", role: "router", shards: "http://a:1", replicas: 1, dataDir: "/tmp/x", wantErr: "-data-dir does not apply"},
		{name: "router with preload", role: "router", shards: "http://a:1", replicas: 1, preload: "github@10", wantErr: "-preload does not apply"},
		{name: "single with shards", role: "single", shards: "http://a:1", replicas: 1, wantErr: "-shards only applies"},
		{name: "shard with replicas", role: "shard", replicas: 2, wantErr: "-replicas only applies"},
		{name: "shard with vnodes", role: "shard", replicas: 1, vnodes: 32, wantErr: "-vnodes only applies"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rc, err := validateRole(tc.role, tc.shards, tc.replicas, tc.vnodes, tc.dataDir, tc.preload)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateRole: %v", err)
				}
				if rc.role != tc.role {
					t.Errorf("role = %q, want %q", rc.role, tc.role)
				}
				if tc.role == "router" && len(rc.shards) == 0 {
					t.Error("router config has no shards")
				}
				for _, s := range rc.shards {
					if strings.HasSuffix(s, "/") || strings.ContainsAny(s, " \t") {
						t.Errorf("shard URL %q not normalized", s)
					}
				}
				return
			}
			if err == nil {
				t.Fatalf("validateRole accepted %+v, want error containing %q", tc, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunRouterEndToEnd boots two -role=shard daemons and a
// -role=router over them, registers a partitioned graph through the
// router, checks the scatter-gather count is exact, then delivers one
// SIGTERM (all three run goroutines listen) and waits for clean exits.
func TestRunRouterEndToEnd(t *testing.T) {
	boot := func(args ...string) (string, chan error) {
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(args, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, done
		case err := <-done:
			t.Fatalf("server %v exited before ready: %v", args, err)
		case <-time.After(30 * time.Second):
			t.Fatalf("server %v never became ready", args)
		}
		panic("unreachable")
	}

	s1, done1 := boot("-addr", "127.0.0.1:0", "-role", "shard")
	s2, done2 := boot("-addr", "127.0.0.1:0", "-role", "shard")
	rURL, doneR := boot("-addr", "127.0.0.1:0", "-role", "router", "-shards", s1+","+s2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New(rURL)

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("router health = %+v, %v", h, err)
	}
	if h.Role != "router" {
		t.Errorf("healthz role = %q, want router", h.Role)
	}

	info, err := c.Register(ctx, serveapi.RegisterRequest{Name: "occ", Dataset: "occupations", Scale: 20, Partitions: 2})
	if err != nil {
		t.Fatalf("register via router: %v", err)
	}
	cr, err := c.Count(ctx, "occ", serveapi.CountRequest{})
	if err != nil {
		t.Fatalf("count via router: %v", err)
	}
	if cr.Butterflies != info.Butterflies {
		t.Errorf("count %d != register count %d", cr.Butterflies, info.Butterflies)
	}
	if cr.Partitions != 2 {
		t.Errorf("count partitions = %d, want 2", cr.Partitions)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	for i, done := range []chan error{done1, done2, doneR} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("server %d exit: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("server %d did not drain after SIGTERM", i)
		}
	}
}
