package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"butterfly"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := butterfly.GenerateComplete(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.k33")
	if err := g.WriteKONECTFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCountFile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", writeTestGraph(t), "-stats"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "butterflies = 9") {
		t.Fatalf("output missing count: %q", out)
	}
	if !strings.Contains(out, "clustering coefficient = 1.000000") {
		t.Fatalf("output missing clustering: %q", out)
	}
	if !strings.Contains(out, "density=") {
		t.Fatalf("output missing stats: %q", out)
	}
}

func TestRunMatrixMarket(t *testing.T) {
	g, err := butterfly.GenerateComplete(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := g.WriteMatrixMarketFile(path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-mm", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "butterflies = 1") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunDatasetAndOptions(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-dataset", "arxiv-cond-mat", "-scale", "100",
		"-invariant", "7", "-threads", "2", "-order", "degree-desc"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Inv7") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunAll(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", writeTestGraph(t), "-all"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, inv := range []string{"Inv1", "Inv8"} {
		if !strings.Contains(sb.String(), inv) {
			t.Fatalf("missing %s in: %q", inv, sb.String())
		}
	}
}

func TestRunVerify(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", writeTestGraph(t), "-verify"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "verified") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunEstimates(t *testing.T) {
	path := writeTestGraph(t)
	for _, kind := range []string{"vertices", "edges", "sparsify"} {
		var sb strings.Builder
		if err := run([]string{"-file", path, "-estimate", kind, "-samples", "10", "-p", "1"}, &sb); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(sb.String(), "estimated butterflies") {
			t.Fatalf("%s output: %q", kind, sb.String())
		}
	}
}

// TestRunEstimateJSON checks -estimate honors -json: one JSON object,
// strategy-appropriate parameter fields, and a deterministic estimate
// for the chosen seed (sparsify with p=1 keeps every edge, so the
// estimate is exact).
func TestRunEstimateJSON(t *testing.T) {
	path := writeTestGraph(t)
	var sb strings.Builder
	if err := run([]string{"-file", path, "-estimate", "sparsify", "-p", "1", "-seed", "7", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("estimate output not JSON: %v\n%q", err, sb.String())
	}
	if got["estimate"].(float64) != 9 { // K33 has exactly 9, p=1 is exact
		t.Fatalf("sparsify p=1 estimate = %v, want 9", got["estimate"])
	}
	if got["strategy"] != "sparsify" || got["p"].(float64) != 1 || got["seed"].(float64) != 7 {
		t.Fatalf("JSON fields wrong: %v", got)
	}
	if _, ok := got["samples"]; ok {
		t.Fatalf("sparsify JSON carries samples field: %v", got)
	}

	sb.Reset()
	if err := run([]string{"-file", path, "-estimate", "edges", "-samples", "50", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	got = nil
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("edges estimate not JSON: %v\n%q", err, sb.String())
	}
	if got["strategy"] != "edges" || got["samples"].(float64) != 50 {
		t.Fatalf("JSON fields wrong: %v", got)
	}
	if _, ok := got["p"]; ok {
		t.Fatalf("edges JSON carries p field: %v", got)
	}
	// Same seed, same estimate: determinism is part of the contract.
	var sb2 strings.Builder
	if err := run([]string{"-file", path, "-estimate", "edges", "-samples", "50", "-json"}, &sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		// elapsed seconds differ; compare just the estimates
		var a, b map[string]any
		json.Unmarshal([]byte(sb.String()), &a)
		json.Unmarshal([]byte(sb2.String()), &b)
		if a["estimate"] != b["estimate"] {
			t.Fatalf("same seed, different estimates: %v vs %v", a["estimate"], b["estimate"])
		}
	}
}

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "github") {
		t.Fatalf("list output: %q", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"noInput":      {},
		"bothInputs":   {"-file", "x", "-dataset", "y"},
		"badOrder":     {"-dataset", "github", "-scale", "500", "-order", "bogus"},
		"badEstimate":  {"-dataset", "github", "-scale", "500", "-estimate", "bogus"},
		"badInvariant": {"-dataset", "github", "-scale", "500", "-invariant", "99"},
		"missingFile":  {"-file", "/no/such/file"},
		"badFlag":      {"-nope"},
		"badDataset":   {"-dataset", "nope"},
	}
	for name, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestRunAlgorithms(t *testing.T) {
	path := writeTestGraph(t)
	for _, alg := range []string{"family", "wedge-hash", "vertex-priority", "sort-aggregate", "spgemm"} {
		var sb strings.Builder
		if err := run([]string{"-file", path, "-algorithm", alg}, &sb); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !strings.Contains(sb.String(), "butterflies = 9") {
			t.Fatalf("%s output: %q", alg, sb.String())
		}
	}
	var sb strings.Builder
	if err := run([]string{"-file", path, "-algorithm", "bogus"}, &sb); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", writeTestGraph(t), "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output not JSON: %v\n%q", err, sb.String())
	}
	if got["butterflies"].(float64) != 9 {
		t.Fatalf("JSON butterflies = %v", got["butterflies"])
	}
	if got["algorithm"] != "family" || got["clustering"].(float64) != 1 {
		t.Fatalf("JSON fields wrong: %v", got)
	}
}

func TestRunProject(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", writeTestGraph(t), "-project", "v1", "-min-shared", "3", "-top", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "3 pairs with ≥3 shared neighbors") {
		t.Fatalf("output: %q", out)
	}
	if !strings.Contains(out, "… 1 more") {
		t.Fatalf("top cap not applied: %q", out)
	}
	if err := run([]string{"-file", writeTestGraph(t), "-project", "bogus"}, &sb); err == nil {
		t.Fatal("bad side accepted")
	}
}

// TestRunAggModes mirrors the hub-policy coverage for -agg: every mode
// counts K33's 9 butterflies, and a bad mode is rejected.
func TestRunAggModes(t *testing.T) {
	path := writeTestGraph(t)
	for _, agg := range []string{"auto", "sort", "hash", "hist", "batch"} {
		var sb strings.Builder
		if err := run([]string{"-file", path, "-agg", agg}, &sb); err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if !strings.Contains(sb.String(), "butterflies = 9") {
			t.Fatalf("%s output: %q", agg, sb.String())
		}
	}
	var sb strings.Builder
	if err := run([]string{"-file", path, "-agg", "bogus"}, &sb); err == nil {
		t.Fatal("bad -agg accepted")
	}
	if err := run([]string{"-file", path, "-agg", "sort", "-algorithm", "spgemm"}, &sb); err == nil {
		t.Fatal("-agg with non-family algorithm accepted")
	}
}

// TestRunAggJSON checks -agg honors -json: the JSON reports the mode
// actually used, which for an explicit mode is that mode and for auto
// is the concrete resolved mode, never "auto".
func TestRunAggJSON(t *testing.T) {
	path := writeTestGraph(t)
	var sb strings.Builder
	if err := run([]string{"-file", path, "-agg", "batch", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output not JSON: %v\n%q", err, sb.String())
	}
	if got["agg"] != "batch" {
		t.Fatalf("JSON agg = %v, want batch", got["agg"])
	}
	sb.Reset()
	if err := run([]string{"-file", path, "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	got = nil
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatal(err)
	}
	switch got["agg"] {
	case "sort", "hash", "hist", "batch":
	default:
		t.Fatalf("auto must resolve to a concrete mode in JSON, got %v", got["agg"])
	}
	if got["butterflies"].(float64) != 9 {
		t.Fatalf("JSON butterflies = %v", got["butterflies"])
	}
}
