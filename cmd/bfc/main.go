// Command bfc counts butterflies in a bipartite graph.
//
// Input is either a KONECT-format edge list (-file), a MatrixMarket
// file (-mm), or a named synthetic stand-in of the paper's datasets
// (-dataset, optionally -scale to shrink it). The algorithm family
// member, thread count, block size and vertex ordering are selectable;
// -all runs the whole family and reports each member's time. The
// hybrid intersection kernel's hub policy is selectable with
// -hub auto|never|always, and -arena reuses counting workspaces across
// runs (meaningful with -all, where it makes repeats allocation-free).
//
// Examples:
//
//	bfc -dataset github -scale 10
//	bfc -file out.arxiv -invariant 2 -threads 6
//	bfc -dataset occupations -all
//	bfc -file out.arxiv -estimate edges -samples 5000
//	bfc -dataset github -scale 10 -estimate edges -target-rel-err 0.02
//	bfc -dataset producers -scale 10 -verify
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"butterfly"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bfc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bfc", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		file      = fs.String("file", "", "KONECT-format input file")
		mm        = fs.String("mm", "", "MatrixMarket input file")
		dataset   = fs.String("dataset", "", "paper dataset stand-in name (see -list)")
		list      = fs.Bool("list", false, "list known dataset names and exit")
		scale     = fs.Int("scale", 1, "shrink factor for -dataset")
		algorithm = fs.String("algorithm", "family", "family|wedge-hash|vertex-priority|sort-aggregate|spgemm")
		invariant = fs.Int("invariant", 0, "family member 1-8 (0 = auto; family algorithm only)")
		threads   = fs.Int("threads", 1, "worker count (>1 = parallel algorithm)")
		block     = fs.Int("block", 0, "block size (>1 = blocked variant)")
		order     = fs.String("order", "natural", "vertex order: natural|degree-asc|degree-desc")
		hub       = fs.String("hub", "auto", "hub kernel policy: auto|never|always (family algorithm only)")
		agg       = fs.String("agg", "auto", "wedge aggregation mode: auto|sort|hash|hist|batch (family algorithm only)")
		arena     = fs.Bool("arena", false, "reuse counting workspaces across runs (family algorithm only)")
		all       = fs.Bool("all", false, "run all 8 invariants and report times")
		stats     = fs.Bool("stats", false, "print graph statistics")
		verify    = fs.Bool("verify", false, "cross-check all counters (slow)")
		estimate  = fs.String("estimate", "", "approximate instead: vertices|edges|sparsify")
		samples   = fs.Int("samples", 0, "sample count for -estimate vertices|edges (0 = adaptive)")
		targetErr = fs.Float64("target-rel-err", 0, "adaptive -estimate: stop when the 95% CI half-width falls below this fraction of the estimate (0 = default 5%)")
		maxSamp   = fs.Int("max-samples", 0, "adaptive -estimate: sample-count ceiling (0 = default 65536)")
		keepP     = fs.Float64("p", 0.5, "keep probability for -estimate sparsify")
		seed      = fs.Int64("seed", 1, "seed for -estimate")
		jsonOut   = fs.Bool("json", false, "emit the count result as JSON")
		project   = fs.String("project", "", "print the one-mode projection instead: v1|v2")
		minShared = fs.Int64("min-shared", 2, "projection: keep pairs sharing at least this many neighbors")
		top       = fs.Int("top", 20, "projection: print at most this many pairs (by shared count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range butterfly.PaperDatasets() {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	g, err := loadGraph(*file, *mm, *dataset, *scale)
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Fprintln(out, g)
	}

	if *stats && !*jsonOut {
		s := g.Stats()
		fmt.Fprintf(out, "density=%.3g degV1=[%d,%d] avg %.2f degV2=[%d,%d] avg %.2f wedges(V1 endpoints)=%d wedges(V2 endpoints)=%d\n",
			s.Density, s.MinDegV1, s.MaxDegV1, s.AvgDegV1,
			s.MinDegV2, s.MaxDegV2, s.AvgDegV2, s.WedgesV1, s.WedgesV2)
		fmt.Fprintf(out, "degree Gini: V1=%.3f V2=%.3f\n", g.DegreeGini(butterfly.V1), g.DegreeGini(butterfly.V2))
	}

	if *estimate != "" {
		return runEstimate(out, g, *estimate, *samples, *targetErr, *maxSamp, *keepP, *seed, *jsonOut)
	}

	if *project != "" {
		return runProject(out, g, *project, *minShared, *top)
	}

	hubPolicy, err := parseHub(*hub)
	if err != nil {
		return err
	}
	aggPolicy, err := butterfly.ParseAggPolicy(*agg)
	if err != nil {
		return fmt.Errorf("unknown -agg %q (want auto|sort|hash|hist|batch)", *agg)
	}
	var pool *butterfly.Arena
	if *arena {
		pool = butterfly.NewArena()
	}

	if *all {
		for inv := butterfly.Invariant1; inv <= butterfly.Invariant8; inv++ {
			start := time.Now()
			c, err := g.CountWith(butterfly.CountOptions{Invariant: inv, Threads: *threads, BlockSize: *block, Hub: hubPolicy, Agg: aggPolicy, Arena: pool})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%v: %d butterflies in %.3fs\n", inv, c, time.Since(start).Seconds())
		}
		return nil
	}

	opts := butterfly.CountOptions{
		Invariant: butterfly.Invariant(*invariant),
		Threads:   *threads,
		BlockSize: *block,
		Hub:       hubPolicy,
		Agg:       aggPolicy,
		Arena:     pool,
	}
	switch *algorithm {
	case "family":
		opts.Algorithm = butterfly.AlgorithmFamily
	case "wedge-hash":
		opts.Algorithm = butterfly.AlgorithmWedgeHash
	case "vertex-priority":
		opts.Algorithm = butterfly.AlgorithmVertexPriority
	case "sort-aggregate":
		opts.Algorithm = butterfly.AlgorithmSortAggregate
	case "spgemm":
		opts.Algorithm = butterfly.AlgorithmSpGEMM
	default:
		return fmt.Errorf("unknown -algorithm %q", *algorithm)
	}
	switch *order {
	case "natural":
		opts.Order = butterfly.OrderNatural
	case "degree-asc":
		opts.Order = butterfly.OrderDegreeAsc
	case "degree-desc":
		opts.Order = butterfly.OrderDegreeDesc
	default:
		return fmt.Errorf("unknown -order %q", *order)
	}

	start := time.Now()
	c, err := g.CountWith(opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()

	if *jsonOut {
		s := g.Stats()
		return json.NewEncoder(out).Encode(map[string]any{
			"v1":          s.NumV1,
			"v2":          s.NumV2,
			"edges":       s.NumEdges,
			"density":     s.Density,
			"butterflies": c,
			"algorithm":   opts.Algorithm.String(),
			"invariant":   opts.Invariant.String(),
			"agg":         g.ResolvedAgg(opts).String(),
			"threads":     *threads,
			"seconds":     elapsed,
			"clustering":  g.ClusteringCoefficient(),
		})
	}
	fmt.Fprintf(out, "butterflies = %d (%v/%v, agg=%v, threads=%d, %.3fs)\n", c, opts.Algorithm, opts.Invariant, g.ResolvedAgg(opts), *threads, elapsed)
	fmt.Fprintf(out, "clustering coefficient = %.6f\n", g.ClusteringCoefficient())

	if *verify {
		start = time.Now()
		if err := g.Verify(); err != nil {
			return err
		}
		fmt.Fprintf(out, "verified: all 8 invariants + independent baselines agree (%.3fs)\n", time.Since(start).Seconds())
	}
	return nil
}

func parseHub(s string) (butterfly.HubPolicy, error) {
	switch s {
	case "auto":
		return butterfly.HubAuto, nil
	case "never":
		return butterfly.HubNever, nil
	case "always":
		return butterfly.HubAlways, nil
	default:
		return 0, fmt.Errorf("unknown -hub %q (want auto|never|always)", s)
	}
}

func runProject(out io.Writer, g *butterfly.Graph, side string, minShared int64, top int) error {
	var sd butterfly.Side
	switch side {
	case "v1":
		sd = butterfly.V1
	case "v2":
		sd = butterfly.V2
	default:
		return fmt.Errorf("unknown -project %q (want v1|v2)", side)
	}
	pairs, err := g.Project(sd, minShared)
	if err != nil {
		return err
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Shared != pairs[j].Shared {
			return pairs[i].Shared > pairs[j].Shared
		}
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	fmt.Fprintf(out, "%s projection: %d pairs with ≥%d shared neighbors\n", sd, len(pairs), minShared)
	for i, p := range pairs {
		if i >= top {
			fmt.Fprintf(out, "… %d more\n", len(pairs)-top)
			break
		}
		fmt.Fprintf(out, "  %d — %d: %d shared (%d butterflies)\n",
			p.A, p.B, p.Shared, p.Shared*(p.Shared-1)/2)
	}
	return nil
}

func runEstimate(out io.Writer, g *butterfly.Graph, kind string, samples int, targetErr float64, maxSamples int, p float64, seed int64, jsonOut bool) error {
	opts := butterfly.EstimateOptions{
		Samples: samples, P: p, Seed: seed,
		TargetRelErr: targetErr, MaxSamples: maxSamples,
	}
	switch kind {
	case "vertices":
		opts.Strategy = butterfly.SampleVertices
	case "edges":
		opts.Strategy = butterfly.SampleEdges
	case "sparsify":
		opts.Strategy = butterfly.SampleSparsify
	default:
		return fmt.Errorf("unknown -estimate %q (want vertices|edges|sparsify)", kind)
	}
	start := time.Now()
	est, err := g.EstimateWithCI(opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()
	if jsonOut {
		res := map[string]any{
			"v1":       g.NumV1(),
			"v2":       g.NumV2(),
			"edges":    g.NumEdges(),
			"estimate": est.Estimate,
			"strategy": kind,
			"seed":     seed,
			"seconds":  elapsed,
		}
		if kind == "sparsify" {
			res["p"] = p
		} else {
			res["samples"] = est.Samples
			res["stderr"] = est.StdErr
			res["ci95"] = est.CI95
		}
		return json.NewEncoder(out).Encode(res)
	}
	if kind == "sparsify" {
		fmt.Fprintf(out, "estimated butterflies ≈ %.0f (%s sampling, %.3fs)\n",
			est.Estimate, kind, elapsed)
		return nil
	}
	fmt.Fprintf(out, "estimated butterflies ≈ %.0f ± %.0f (95%% CI, %s sampling, %d samples, %.3fs)\n",
		est.Estimate, est.CI95, kind, est.Samples, elapsed)
	return nil
}

func loadGraph(file, mm, dataset string, scale int) (*butterfly.Graph, error) {
	set := 0
	for _, s := range []string{file, mm, dataset} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("need exactly one of -file, -mm, -dataset (try -list)")
	}
	switch {
	case file != "":
		return butterfly.ReadKONECTFile(file)
	case mm != "":
		return butterfly.ReadMatrixMarketFile(mm)
	default:
		return butterfly.GeneratePaperDataset(dataset, scale)
	}
}
