// Command bfpeel extracts k-tip and k-wing subgraphs and full tip/wing
// decompositions from a bipartite graph (Section IV of the paper).
//
// Modes:
//
//	tip           the k-tip subgraph for -k and -side
//	wing          the k-wing subgraph for -k
//	tip-numbers   every vertex's tip number (histogram to stdout)
//	wing-numbers  every edge's wing number (histogram to stdout)
//
// Engines (-engine): "delta" (default) is the incremental wedge-delta
// peeling engine; "recount" is the round-synchronous engine that
// recomputes all supports every round. Both produce identical results;
// -engine "" with -threads 1 keeps the classic sequential heap
// algorithms for tip/wing and numbers modes.
//
// Examples:
//
//	bfpeel -dataset arxiv-cond-mat -scale 10 -mode tip -k 5
//	bfpeel -file out.github -mode wing -k 10 -out out.github-10wing
//	bfpeel -dataset producers -scale 20 -mode tip-numbers -engine delta -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"butterfly"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bfpeel:", err)
		os.Exit(1)
	}
}

// jsonResult is the -json output: one object on stdout describing what
// was peeled, on which engine, in how many rounds, and how long it
// took. Subgraph modes fill the Remaining/Peeled pair; numbers modes
// fill Items/MaxNumber.
type jsonResult struct {
	Mode      string `json:"mode"`
	K         int64  `json:"k,omitempty"`
	Side      string `json:"side,omitempty"`
	Engine    string `json:"engine"`
	Rounds    int    `json:"rounds"`
	ElapsedMS int64  `json:"elapsed_ms"`

	EdgesRemaining int64 `json:"edges_remaining,omitempty"`
	EdgesPeeled    int64 `json:"edges_peeled,omitempty"`

	Items     int   `json:"items,omitempty"`      // vertices (tip) or edges (wing) decomposed
	MaxNumber int64 `json:"max_number,omitempty"` // largest tip/wing number
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bfpeel", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		file    = fs.String("file", "", "KONECT-format input file")
		mm      = fs.String("mm", "", "MatrixMarket input file")
		dataset = fs.String("dataset", "", "paper dataset stand-in name")
		scale   = fs.Int("scale", 1, "shrink factor for -dataset")
		mode    = fs.String("mode", "tip", "tip|wing|tip-numbers|wing-numbers|densest")
		k       = fs.Int64("k", 1, "peeling threshold")
		side    = fs.String("side", "v1", "vertex side for tip modes: v1|v2")
		ahead   = fs.Bool("lookahead", false, "use the Fig 8 look-ahead k-tip algorithm")
		threads = fs.Int("threads", 1, ">1 runs the engine-based parallel variants")
		engine  = fs.String("engine", "", "peeling engine: delta|recount (empty keeps the sequential heap path at -threads 1)")
		jsonOut = fs.Bool("json", false, "emit one JSON result object instead of text")
		outPath = fs.String("out", "", "write resulting subgraph (tip/wing modes) to this KONECT file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var eng butterfly.PeelEngine
	switch *engine {
	case "", "delta":
		eng = butterfly.PeelDelta
	case "recount":
		eng = butterfly.PeelRecount
	default:
		return fmt.Errorf("unknown -engine %q (want delta|recount)", *engine)
	}
	// The engine path is taken when an engine is named explicitly or the
	// run is parallel; -threads 1 without -engine keeps the classic
	// sequential heap algorithms.
	useEngine := *engine != "" || *threads > 1
	opts := butterfly.PeelOptions{Engine: eng, Threads: *threads}

	g, err := loadGraph(*file, *mm, *dataset, *scale)
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Fprintln(out, "input:", g)
	}

	var sd butterfly.Side
	switch *side {
	case "v1":
		sd = butterfly.V1
	case "v2":
		sd = butterfly.V2
	default:
		return fmt.Errorf("unknown -side %q", *side)
	}

	res := jsonResult{Mode: *mode, Engine: eng.String()}
	emit := func() error {
		if !*jsonOut {
			return nil
		}
		enc := json.NewEncoder(out)
		return enc.Encode(res)
	}

	start := time.Now()
	switch *mode {
	case "tip":
		var h *butterfly.Graph
		var st butterfly.PeelStats
		switch {
		case useEngine:
			h, st, err = g.KTipWith(*k, sd, opts)
		case *ahead:
			h, err = g.KTipLookAhead(*k, sd)
		default:
			h, err = g.KTip(*k, sd)
		}
		if err != nil {
			return err
		}
		if *jsonOut {
			res.K, res.Side, res.Rounds = *k, *side, st.Rounds
			res.EdgesRemaining = h.NumEdges()
			res.EdgesPeeled = g.NumEdges() - h.NumEdges()
			res.ElapsedMS = time.Since(start).Milliseconds()
			if err := emit(); err != nil {
				return err
			}
			return writeSub(out, h, *outPath, *jsonOut)
		}
		return report(out, h, *outPath, fmt.Sprintf("%d-tip (%s side)", *k, sd), start)
	case "wing":
		var h *butterfly.Graph
		var st butterfly.PeelStats
		if useEngine {
			h, st, err = g.KWingWith(*k, opts)
		} else {
			h, err = g.KWing(*k)
		}
		if err != nil {
			return err
		}
		if *jsonOut {
			res.K, res.Rounds = *k, st.Rounds
			res.EdgesRemaining = h.NumEdges()
			res.EdgesPeeled = g.NumEdges() - h.NumEdges()
			res.ElapsedMS = time.Since(start).Milliseconds()
			if err := emit(); err != nil {
				return err
			}
			return writeSub(out, h, *outPath, *jsonOut)
		}
		return report(out, h, *outPath, fmt.Sprintf("%d-wing", *k), start)
	case "tip-numbers":
		var tn []int64
		var st butterfly.PeelStats
		if useEngine {
			tn, st, err = g.TipNumbersWith(sd, opts)
		} else {
			tn, err = g.TipNumbers(sd)
		}
		if err != nil {
			return err
		}
		if *jsonOut {
			res.Side, res.Rounds = *side, st.Rounds
			res.Items = len(tn)
			res.MaxNumber = maxOf(tn)
			res.ElapsedMS = time.Since(start).Milliseconds()
			return emit()
		}
		fmt.Fprintf(out, "tip numbers (%s side) in %.3fs:\n", sd, time.Since(start).Seconds())
		histogram(out, tn)
		return nil
	case "wing-numbers":
		var wn []butterfly.EdgeCount
		var st butterfly.PeelStats
		if useEngine {
			wn, st = g.WingNumbersWith(opts)
		} else {
			wn = g.WingNumbers()
		}
		vals := make([]int64, len(wn))
		for i, w := range wn {
			vals[i] = w.Count
		}
		if *jsonOut {
			res.Rounds = st.Rounds
			res.Items = len(vals)
			res.MaxNumber = maxOf(vals)
			res.ElapsedMS = time.Since(start).Milliseconds()
			return emit()
		}
		fmt.Fprintf(out, "wing numbers in %.3fs:\n", time.Since(start).Seconds())
		histogram(out, vals)
		return nil
	case "densest":
		res, err := g.DensestByButterflies(sd)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "densest-by-butterflies (%s side): %d vertices, %d butterflies, density %.2f (%.3fs)\n",
			sd, res.Vertices, res.Butterflies, res.Density, time.Since(start).Seconds())
		if *outPath != "" {
			var h *butterfly.Graph
			if sd == butterfly.V1 {
				h, err = g.InducedSubgraph(res.Keep, nil)
			} else {
				h, err = g.InducedSubgraph(nil, res.Keep)
			}
			if err != nil {
				return err
			}
			if err := h.WriteKONECTFile(*outPath); err != nil {
				return err
			}
			fmt.Fprintln(out, "wrote", *outPath)
		}
		return nil
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
}

func maxOf(vals []int64) int64 {
	var m int64
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// writeSub writes the subgraph if requested; in JSON mode the
// confirmation line is suppressed so stdout stays one JSON object.
func writeSub(out io.Writer, h *butterfly.Graph, path string, quiet bool) error {
	if path == "" {
		return nil
	}
	if err := h.WriteKONECTFile(path); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintln(out, "wrote", path)
	}
	return nil
}

func report(out io.Writer, h *butterfly.Graph, path, label string, start time.Time) error {
	fmt.Fprintf(out, "%s: %s (%.3fs)\n", label, h, time.Since(start).Seconds())
	if path != "" {
		if err := h.WriteKONECTFile(path); err != nil {
			return err
		}
		fmt.Fprintln(out, "wrote", path)
	}
	return nil
}

// histogram prints "value: count" lines for the distinct values,
// ascending, capped at 25 buckets with the tail summarized.
func histogram(out io.Writer, vals []int64) {
	counts := map[int64]int{}
	for _, v := range vals {
		counts[v]++
	}
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	shown := keys
	if len(shown) > 25 {
		shown = shown[:25]
	}
	for _, k := range shown {
		fmt.Fprintf(out, "  %8d: %d\n", k, counts[k])
	}
	if len(keys) > len(shown) {
		fmt.Fprintf(out, "  … %d more distinct values up to %d\n", len(keys)-len(shown), keys[len(keys)-1])
	}
}

func loadGraph(file, mm, dataset string, scale int) (*butterfly.Graph, error) {
	set := 0
	for _, s := range []string{file, mm, dataset} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("need exactly one of -file, -mm, -dataset")
	}
	switch {
	case file != "":
		return butterfly.ReadKONECTFile(file)
	case mm != "":
		return butterfly.ReadMatrixMarketFile(mm)
	default:
		return butterfly.GeneratePaperDataset(dataset, scale)
	}
}
