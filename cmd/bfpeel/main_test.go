package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"butterfly"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := butterfly.GenerateComplete(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.k44")
	if err := g.WriteKONECTFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTip(t *testing.T) {
	path := writeTestGraph(t)
	for _, extra := range [][]string{nil, {"-lookahead"}} {
		var sb strings.Builder
		args := append([]string{"-file", path, "-mode", "tip", "-k", "1"}, extra...)
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "1-tip (V1 side): Bipartite(|V1|=4, |V2|=4, |E|=16)") {
			t.Fatalf("output: %q", sb.String())
		}
	}
}

func TestRunTipSideV2AndOut(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "peeled")
	var sb strings.Builder
	err := run([]string{"-file", writeTestGraph(t), "-mode", "tip", "-k", "1",
		"-side", "v2", "-out", outPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote "+outPath) {
		t.Fatalf("output: %q", sb.String())
	}
	g, err := butterfly.ReadKONECTFile(outPath)
	if err != nil || g.NumEdges() != 16 {
		t.Fatalf("peeled file wrong: %v", err)
	}
}

func TestRunWing(t *testing.T) {
	var sb strings.Builder
	// K(4,4): each edge supports 9 butterflies → 10-wing is empty.
	if err := run([]string{"-file", writeTestGraph(t), "-mode", "wing", "-k", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "|E|=0") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunTipNumbers(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", writeTestGraph(t), "-mode", "tip-numbers"}, &sb); err != nil {
		t.Fatal(err)
	}
	// All vertices of K(4,4) share the same tip number: 3·C(4,2) = 18.
	if !strings.Contains(sb.String(), "18: 4") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunWingNumbers(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", writeTestGraph(t), "-mode", "wing-numbers"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "9: 16") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunDataset(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-dataset", "arxiv-cond-mat", "-scale", "100", "-mode", "tip", "-k", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1-tip") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestHistogramTailSummary(t *testing.T) {
	vals := make([]int64, 40)
	for i := range vals {
		vals[i] = int64(i)
	}
	var sb strings.Builder
	histogram(&sb, vals)
	if !strings.Contains(sb.String(), "more distinct values up to 39") {
		t.Fatalf("no tail summary: %q", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	cases := map[string][]string{
		"noInput":     {},
		"bothInputs":  {"-file", "x", "-dataset", "y"},
		"badSide":     {"-file", path, "-side", "v3"},
		"badMode":     {"-file", path, "-mode", "shred"},
		"missingFile": {"-file", "/no/such/file"},
		"badFlag":     {"-bogus"},
		"badOutPath":  {"-file", path, "-mode", "tip", "-k", "0", "-out", "/no/dir/f"},
	}
	for name, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestRunMatrixMarketInput(t *testing.T) {
	g, err := butterfly.GenerateComplete(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := g.WriteMatrixMarketFile(path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-mm", path, "-mode", "wing", "-k", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "|E|=9") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunDensest(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "dense")
	var sb strings.Builder
	err := run([]string{"-file", writeTestGraph(t), "-mode", "densest", "-out", outPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "densest-by-butterflies") {
		t.Fatalf("output: %q", sb.String())
	}
	g, err := butterfly.ReadKONECTFile(outPath)
	if err != nil || g.NumEdges() != 16 {
		t.Fatalf("densest output file wrong: %v", err)
	}
}

func TestRunParallelVariants(t *testing.T) {
	path := writeTestGraph(t)
	for _, args := range [][]string{
		{"-file", path, "-mode", "tip", "-k", "1", "-threads", "3"},
		{"-file", path, "-mode", "wing", "-k", "1", "-threads", "3"},
		{"-file", path, "-mode", "tip-numbers", "-threads", "3"},
		{"-file", path, "-mode", "wing-numbers", "-threads", "3"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%v: empty output", args)
		}
	}
	// Parallel and sequential tip agree on the reported subgraph.
	var seq, par strings.Builder
	if err := run([]string{"-file", path, "-mode", "tip", "-k", "1"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-mode", "tip", "-k", "1", "-threads", "4"}, &par); err != nil {
		t.Fatal(err)
	}
	extract := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "1-tip") {
				return line[:strings.LastIndex(line, "(")]
			}
		}
		return ""
	}
	if extract(seq.String()) != extract(par.String()) || extract(seq.String()) == "" {
		t.Fatalf("tip outputs differ:\n%q\n%q", seq.String(), par.String())
	}
}

func TestRunEngines(t *testing.T) {
	path := writeTestGraph(t)
	// Both engines must report the same surviving subgraph on every
	// mode that takes the engine path.
	for _, engine := range []string{"delta", "recount"} {
		var sb strings.Builder
		args := []string{"-file", path, "-mode", "tip", "-k", "1", "-engine", engine}
		if err := run(args, &sb); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !strings.Contains(sb.String(), "1-tip (V1 side): Bipartite(|V1|=4, |V2|=4, |E|=16)") {
			t.Fatalf("%s output: %q", engine, sb.String())
		}
		sb.Reset()
		args = []string{"-file", path, "-mode", "wing-numbers", "-engine", engine}
		if err := run(args, &sb); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !strings.Contains(sb.String(), "9: 16") {
			t.Fatalf("%s wing-numbers output: %q", engine, sb.String())
		}
	}
	var sb strings.Builder
	if err := run([]string{"-file", path, "-mode", "tip", "-engine", "heap2"}, &sb); err == nil {
		t.Fatal("bad engine accepted")
	}
}

func TestRunJSON(t *testing.T) {
	path := writeTestGraph(t)
	for _, engine := range []string{"delta", "recount"} {
		// Subgraph mode: K(4,4) has 9 butterflies per edge, so 10-wing
		// peels all 16 edges.
		var sb strings.Builder
		args := []string{"-file", path, "-mode", "wing", "-k", "10", "-engine", engine, "-json"}
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		var res jsonResult
		if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
			t.Fatalf("%s: not one JSON object: %q (%v)", engine, sb.String(), err)
		}
		if res.Mode != "wing" || res.K != 10 || res.Engine != engine {
			t.Fatalf("%s: result %+v", engine, res)
		}
		if res.EdgesRemaining != 0 || res.EdgesPeeled != 16 || res.Rounds < 1 {
			t.Fatalf("%s: peeled counts wrong: %+v", engine, res)
		}

		// Numbers mode: all 8 vertices share tip number 18.
		sb.Reset()
		args = []string{"-file", path, "-mode", "tip-numbers", "-engine", engine, "-json"}
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
			t.Fatalf("%s: not one JSON object: %q (%v)", engine, sb.String(), err)
		}
		if res.Items != 4 || res.MaxNumber != 18 || res.Rounds < 1 || res.Engine != engine {
			t.Fatalf("%s: tip-numbers result %+v", engine, res)
		}
	}
}

func TestRunJSONWithOut(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "peeled")
	var sb strings.Builder
	args := []string{"-file", writeTestGraph(t), "-mode", "tip", "-k", "1",
		"-engine", "delta", "-json", "-out", outPath}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	// stdout must stay exactly one JSON object even when writing -out.
	var res jsonResult
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("not one JSON object: %q (%v)", sb.String(), err)
	}
	g, err := butterfly.ReadKONECTFile(outPath)
	if err != nil || g.NumEdges() != 16 {
		t.Fatalf("peeled file wrong: %v", err)
	}
}
