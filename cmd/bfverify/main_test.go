package main

import (
	"path/filepath"
	"strings"
	"testing"

	"butterfly"
)

func TestRunSelfTestOnly(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-selftest-only", "-trials", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FLAME worksheet battery") {
		t.Fatalf("output: %q", sb.String())
	}
	if strings.Contains(sb.String(), "ALL CHECKS PASSED") {
		t.Fatal("self-test-only should not run graph checks")
	}
}

func TestRunFullOnFile(t *testing.T) {
	g, err := butterfly.GeneratePowerLaw(60, 50, 300, 0.7, 0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.test")
	if err := g.WriteKONECTFile(path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", path, "-trials", "5", "-k", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"counters:", "identities:", "peeling:", "ALL CHECKS PASSED"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in: %q", want, out)
		}
	}
}

func TestRunDataset(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dataset", "arxiv-cond-mat", "-scale", "150", "-trials", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ALL CHECKS PASSED") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"noInput":     {"-trials", "1"},
		"bothInputs":  {"-trials", "1", "-file", "x", "-dataset", "y"},
		"missingFile": {"-trials", "1", "-file", "/no/such"},
		"badFlag":     {"-bogus"},
		"badDataset":  {"-trials", "1", "-dataset", "nope"},
	}
	for name, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestRunMatrixMarketInput(t *testing.T) {
	g, err := butterfly.GeneratePowerLaw(30, 30, 120, 0.7, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := g.WriteMatrixMarketFile(path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-mm", path, "-trials", "3", "-k", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ALL CHECKS PASSED") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestRunWorksheet(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-worksheet", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Inv2") || !strings.Contains(sb.String(), "look-ahead") {
		t.Fatalf("worksheet output: %q", sb.String())
	}
	if err := run([]string{"-worksheet", "9"}, &sb); err == nil {
		t.Fatal("bad worksheet index accepted")
	}
}
