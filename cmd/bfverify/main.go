// Command bfverify is the acceptance tool: it cross-checks every
// counting algorithm in the library on a given graph, validates the
// peeling operators' defining properties on it, and replays the FLAME
// proof obligations of all eight derived algorithms on a battery of
// random instances.
//
// Exit status 0 means every check passed.
//
// Examples:
//
//	bfverify -dataset producers -scale 10
//	bfverify -file out.arxiv -k 3
//	bfverify -selftest-only
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"butterfly"
	"butterfly/internal/core"
	"butterfly/internal/dense"
	"butterfly/internal/flame"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bfverify:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bfverify", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		file      = fs.String("file", "", "KONECT-format input file")
		mm        = fs.String("mm", "", "MatrixMarket input file")
		dataset   = fs.String("dataset", "", "paper dataset stand-in name")
		scale     = fs.Int("scale", 1, "shrink factor for -dataset")
		k         = fs.Int64("k", 2, "peeling threshold for the tip/wing property checks")
		selfOnly  = fs.Bool("selftest-only", false, "run only the FLAME self-test battery")
		trials    = fs.Int("trials", 50, "random instances for the FLAME battery")
		seed      = fs.Int64("seed", 1, "seed for the FLAME battery")
		worksheet = fs.Int("worksheet", 0, "print the FLAME worksheet for invariant 1-8 and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *worksheet != 0 {
		if *worksheet < 1 || *worksheet > 8 {
			return fmt.Errorf("-worksheet must be 1..8, got %d", *worksheet)
		}
		fmt.Fprint(out, flame.Worksheet(core.Invariant(*worksheet)))
		return nil
	}

	// FLAME worksheet battery: replay the derivation's proof
	// obligations on random small instances.
	start := time.Now()
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *trials; i++ {
		a := dense.New(rng.Intn(7)+1, rng.Intn(7)+1)
		p := 0.2 + 0.6*rng.Float64()
		for c := range a.Data {
			if rng.Float64() < p {
				a.Data[c] = 1
			}
		}
		if err := flame.CheckAll(a); err != nil {
			return fmt.Errorf("FLAME battery instance %d: %w", i, err)
		}
	}
	fmt.Fprintf(out, "FLAME worksheet battery: %d instances × 8 invariants × 3 obligations OK (%.2fs)\n",
		*trials, time.Since(start).Seconds())
	if *selfOnly {
		return nil
	}

	g, err := loadGraph(*file, *mm, *dataset, *scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "input:", g)

	// Cross-counter agreement.
	start = time.Now()
	if err := g.Verify(); err != nil {
		return err
	}
	fmt.Fprintf(out, "counters: 8 invariants + wedge-hash + vertex-priority + sort-aggregate + SpGEMM agree (%.2fs)\n",
		time.Since(start).Seconds())

	// Identity checks: Σ per-vertex = 2Ξ, Σ supports = 4Ξ.
	total := g.Count()
	for _, side := range []butterfly.Side{butterfly.V1, butterfly.V2} {
		s, err := g.VertexButterflies(side)
		if err != nil {
			return err
		}
		var sum int64
		for _, v := range s {
			sum += v
		}
		if sum != 2*total {
			return fmt.Errorf("per-vertex identity violated on %v: Σ=%d, want %d", side, sum, 2*total)
		}
	}
	var supSum int64
	for _, e := range g.EdgeSupports() {
		supSum += e.Count
	}
	if supSum != 4*total {
		return fmt.Errorf("per-edge identity violated: Σ=%d, want %d", supSum, 4*total)
	}
	fmt.Fprintf(out, "identities: Σ vertex counts = 2Ξ and Σ edge supports = 4Ξ OK (Ξ=%d)\n", total)

	// Peeling defining properties at -k.
	start = time.Now()
	tip, err := g.KTip(*k, butterfly.V1)
	if err != nil {
		return err
	}
	ts, err := tip.VertexButterflies(butterfly.V1)
	if err != nil {
		return err
	}
	for u := 0; u < tip.NumV1(); u++ {
		if tip.DegreeV1(u) > 0 && ts[u] < *k {
			return fmt.Errorf("%d-tip property violated at vertex %d: %d butterflies", *k, u, ts[u])
		}
	}
	wing, err := g.KWing(*k)
	if err != nil {
		return err
	}
	for _, e := range wing.EdgeSupports() {
		if e.Count < *k {
			return fmt.Errorf("%d-wing property violated at edge (%d,%d): support %d", *k, e.U, e.V, e.Count)
		}
	}
	fmt.Fprintf(out, "peeling: %d-tip (%d edges) and %d-wing (%d edges) defining properties OK (%.2fs)\n",
		*k, tip.NumEdges(), *k, wing.NumEdges(), time.Since(start).Seconds())

	fmt.Fprintln(out, "ALL CHECKS PASSED")
	return nil
}

func loadGraph(file, mm, dataset string, scale int) (*butterfly.Graph, error) {
	set := 0
	for _, s := range []string{file, mm, dataset} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("need exactly one of -file, -mm, -dataset (or -selftest-only)")
	}
	switch {
	case file != "":
		return butterfly.ReadKONECTFile(file)
	case mm != "":
		return butterfly.ReadMatrixMarketFile(mm)
	default:
		return butterfly.GeneratePaperDataset(dataset, scale)
	}
}
