package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"

	"butterfly"
)

func TestRunModelsToStdout(t *testing.T) {
	cases := map[string][]string{
		"er":         {"-model", "er", "-m", "5", "-n", "5", "-p", "0.5"},
		"gnm":        {"-model", "gnm", "-m", "5", "-n", "5", "-e", "10"},
		"powerlaw":   {"-model", "powerlaw", "-m", "5", "-n", "5", "-e", "8"},
		"prefattach": {"-model", "prefattach", "-m", "5", "-n", "5", "-e", "8"},
		"complete":   {"-model", "complete", "-m", "3", "-n", "3"},
		"dataset":    {"-model", "dataset", "-name", "github", "-scale", "1000"},
	}
	for name, args := range cases {
		var out, errw strings.Builder
		if err := run(args, &out, &errw); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := butterfly.ReadKONECT(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("%s: output not parseable: %v", name, err)
		}
		if name == "complete" && g.NumEdges() != 9 {
			t.Fatalf("complete: %d edges", g.NumEdges())
		}
	}
}

func TestRunMatrixMarketFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "complete", "-m", "2", "-n", "2", "-format", "mm"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "%%MatrixMarket") {
		t.Fatalf("not MatrixMarket: %q", out.String()[:30])
	}
	g, err := butterfly.ReadMatrixMarket(strings.NewReader(out.String()))
	if err != nil || g.Count() != 1 {
		t.Fatalf("parse back: %v", err)
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.g")
	var errw strings.Builder
	if err := run([]string{"-model", "complete", "-m", "2", "-n", "3", "-out", path}, io.Discard, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "wrote") {
		t.Fatalf("no confirmation: %q", errw.String())
	}
	g, err := butterfly.ReadKONECTFile(path)
	if err != nil || g.NumEdges() != 6 {
		t.Fatalf("file wrong: %v", err)
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	var a, b strings.Builder
	args := []string{"-model", "powerlaw", "-m", "20", "-n", "20", "-e", "40", "-seed", "9"}
	if err := run(args, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"badModel":       {"-model", "nope"},
		"badFormat":      {"-model", "complete", "-m", "2", "-n", "2", "-format", "xml"},
		"datasetNoName":  {"-model", "dataset"},
		"badDataset":     {"-model", "dataset", "-name", "nope"},
		"badProbability": {"-model", "er", "-p", "2"},
		"tooManyEdges":   {"-model", "gnm", "-m", "2", "-n", "2", "-e", "100"},
		"badFlag":        {"-bogus"},
		"badOutPath":     {"-model", "complete", "-m", "1", "-n", "1", "-out", "/no/such/dir/f"},
	}
	for name, args := range cases {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
