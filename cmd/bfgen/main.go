// Command bfgen generates synthetic bipartite graphs in KONECT or
// MatrixMarket format.
//
// Models:
//
//	er        Erdős–Rényi: each edge present with probability -p
//	gnm       exactly -e uniform random edges
//	powerlaw  bipartite Chung–Lu with power-law weights (-alpha1/-alpha2)
//	prefattach  degree-proportional growth (emergent skew)
//	complete  complete bipartite K(m, n)
//	dataset   a stand-in for one of the paper's KONECT datasets (-name)
//
// Examples:
//
//	bfgen -model powerlaw -m 10000 -n 8000 -e 50000 -out out.pl
//	bfgen -model dataset -name github -out out.github
//	bfgen -model complete -m 4 -n 4 -format mm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"butterfly"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bfgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("bfgen", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		model  = fs.String("model", "powerlaw", "er|gnm|powerlaw|prefattach|complete|dataset")
		m      = fs.Int("m", 1000, "|V1|")
		n      = fs.Int("n", 1000, "|V2|")
		e      = fs.Int64("e", 5000, "edge count (gnm, powerlaw)")
		p      = fs.Float64("p", 0.01, "edge probability (er)")
		alpha1 = fs.Float64("alpha1", 0.7, "V1 power-law exponent (powerlaw)")
		alpha2 = fs.Float64("alpha2", 0.7, "V2 power-law exponent (powerlaw)")
		name   = fs.String("name", "", "dataset name (model=dataset)")
		scale  = fs.Int("scale", 1, "shrink factor (model=dataset)")
		seed   = fs.Int64("seed", 1, "RNG seed")
		format = fs.String("format", "konect", "output format: konect|mm")
		outP   = fs.String("out", "", "output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g   *butterfly.Graph
		err error
	)
	switch *model {
	case "er":
		g, err = butterfly.GenerateErdosRenyi(*m, *n, *p, *seed)
	case "gnm":
		g, err = butterfly.GenerateGnm(*m, *n, *e, *seed)
	case "powerlaw":
		g, err = butterfly.GeneratePowerLaw(*m, *n, *e, *alpha1, *alpha2, *seed)
	case "prefattach":
		g, err = butterfly.GeneratePreferentialAttachment(*m, *n, *e, *seed)
	case "complete":
		g, err = butterfly.GenerateComplete(*m, *n)
	case "dataset":
		if *name == "" {
			err = fmt.Errorf("model=dataset needs -name (one of %v)", butterfly.PaperDatasets())
		} else {
			g, err = butterfly.GeneratePaperDataset(*name, *scale)
		}
	default:
		err = fmt.Errorf("unknown -model %q", *model)
	}
	if err != nil {
		return err
	}

	write := g.WriteKONECT
	writeFile := g.WriteKONECTFile
	switch *format {
	case "konect":
	case "mm":
		write = g.WriteMatrixMarket
		writeFile = g.WriteMatrixMarketFile
	default:
		return fmt.Errorf("unknown -format %q (want konect|mm)", *format)
	}

	if *outP == "" {
		return write(out)
	}
	if err := writeFile(*outP); err != nil {
		return err
	}
	fmt.Fprintf(errw, "bfgen: wrote %s to %s\n", g, *outP)
	return nil
}
