package butterfly

import (
	"fmt"

	"butterfly/internal/gen"
)

// GenerateErdosRenyi samples each possible edge independently with
// probability p; deterministic given seed.
func GenerateErdosRenyi(m, n int, p float64, seed int64) (*Graph, error) {
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("butterfly: negative vertex-set size %d/%d", m, n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("butterfly: probability %g out of [0,1]", p)
	}
	return &Graph{g: gen.ErdosRenyi(m, n, p, seed)}, nil
}

// GenerateGnm samples exactly e distinct edges uniformly at random.
func GenerateGnm(m, n int, e int64, seed int64) (*Graph, error) {
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("butterfly: negative vertex-set size %d/%d", m, n)
	}
	if e < 0 || e > int64(m)*int64(n) {
		return nil, fmt.Errorf("butterfly: edge count %d out of [0,%d]", e, int64(m)*int64(n))
	}
	return &Graph{g: gen.Gnm(m, n, e, seed)}, nil
}

// GeneratePowerLaw samples ~e distinct edges from a bipartite Chung–Lu
// model with power-law degree weights of exponents alpha1 (V1 side)
// and alpha2 (V2 side) — the heavy-tailed profile of real-world
// bipartite networks.
func GeneratePowerLaw(m, n int, e int64, alpha1, alpha2 float64, seed int64) (*Graph, error) {
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("butterfly: vertex-set sizes must be positive, got %d/%d", m, n)
	}
	if e < 0 {
		return nil, fmt.Errorf("butterfly: negative edge count %d", e)
	}
	return &Graph{g: gen.PowerLawBipartite(m, n, e, alpha1, alpha2, seed)}, nil
}

// GeneratePreferentialAttachment grows a graph edge by edge with
// degree-proportional ("rich get richer") endpoint selection — skew
// emerges from the process instead of being imposed. Duplicate draws
// merge, so the realized edge count can fall slightly below e.
func GeneratePreferentialAttachment(m, n int, e int64, seed int64) (*Graph, error) {
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("butterfly: vertex-set sizes must be positive, got %d/%d", m, n)
	}
	if e < 0 {
		return nil, fmt.Errorf("butterfly: negative edge count %d", e)
	}
	return &Graph{g: gen.PreferentialAttachment(m, n, e, seed)}, nil
}

// GenerateComplete returns the complete bipartite graph K(a, b), which
// has C(a,2)·C(b,2) butterflies.
func GenerateComplete(a, b int) (*Graph, error) {
	if a < 0 || b < 0 {
		return nil, fmt.Errorf("butterfly: negative vertex-set size %d/%d", a, b)
	}
	return &Graph{g: gen.CompleteBipartite(a, b)}, nil
}

// GenerateSBM samples a bipartite stochastic block model: communities
// of the given sizes on each side, intra-community (same block index)
// edges with probability pIn and all other edges with pOut. The
// planted-partition workload: butterflies concentrate inside paired
// blocks. Sampling is Θ(|V1|·|V2|); intended for laptop-scale planted
// structure, not web-scale graphs.
func GenerateSBM(blocks1, blocks2 []int, pIn, pOut float64, seed int64) (*Graph, error) {
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, fmt.Errorf("butterfly: probabilities (%g, %g) out of [0,1]", pIn, pOut)
	}
	for _, s := range append(append([]int(nil), blocks1...), blocks2...) {
		if s < 0 {
			return nil, fmt.Errorf("butterfly: negative block size %d", s)
		}
	}
	return &Graph{g: gen.SBM(blocks1, blocks2, pIn, pOut, seed)}, nil
}

// PaperDatasets lists the names of the five KONECT dataset stand-ins
// from the paper's evaluation (Fig 9), accepted by
// GeneratePaperDataset.
func PaperDatasets() []string { return gen.PaperDatasetNames() }

// GeneratePaperDataset generates the named synthetic stand-in with the
// exact |V1|, |V2| and |E| of the paper's Fig 9 (see DESIGN.md for the
// substitution rationale). scale ≥ 2 shrinks all three by that factor.
func GeneratePaperDataset(name string, scale int) (*Graph, error) {
	if scale <= 1 {
		g, err := gen.PaperDataset(name)
		if err != nil {
			return nil, err
		}
		return &Graph{g: g}, nil
	}
	g, err := gen.ScaledPaperDataset(name, scale)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}
