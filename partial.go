package butterfly

import "butterfly/internal/core"

// WedgePartial is one entry of a V1-centered wedge partial map: Count
// wedges (v—u—w) whose center u lies in the graph and whose endpoints
// V < W lie in V2. Partials are the unit of distributed butterfly
// counting: partition a graph's V1 side into edge-disjoint subgraphs,
// export each partition's partials, and MergeWedgePartials reduces
// them to the exact global count — the cross-node generalisation of
// the hub-split partial-pair reduction used by the parallel engine.
type WedgePartial struct {
	V, W  int32
	Count int64
}

// WedgePartials returns the graph's V1-centered wedge frequency map
// over V2 endpoint pairs, sorted by (V, W). For a graph that is one
// partition of a larger graph (same dimensions, subset of V1 rows
// populated), the result is exactly that partition's contribution to
// the global wedge multiset.
func (g *Graph) WedgePartials() []WedgePartial {
	ps := core.WedgePartials(g.g)
	out := make([]WedgePartial, len(ps))
	for i, p := range ps {
		out[i] = WedgePartial{V: p.V, W: p.W, Count: p.C}
	}
	return out
}

func partialsToCore(ps []WedgePartial) []core.PairCount {
	out := make([]core.PairCount, len(ps))
	for i, p := range ps {
		out[i] = core.PairCount{V: p.V, W: p.W, C: p.Count}
	}
	return out
}

func partialsFromCore(ps []core.PairCount) []WedgePartial {
	out := make([]WedgePartial, len(ps))
	for i, p := range ps {
		out[i] = WedgePartial{V: p.V, W: p.W, Count: p.C}
	}
	return out
}

// WedgePartialDelta returns the signed change in the wedge partial map
// between two versions of a graph whose mutations touched only the
// given V1 centers: ApplyWedgePartialDelta(before.WedgePartials(), Δ)
// reconstructs after.WedgePartials() exactly. Cost is proportional to
// the touched centers' wedge counts in both versions, not the graph —
// the incremental-maintenance kernel behind `/v1/internal/partial?since=`.
// Entries may carry negative counts (wedges destroyed by deletions).
func WedgePartialDelta(before, after *Graph, centers []int) []WedgePartial {
	d := core.DiffPartials(
		core.WedgePartialsOf(after.g, centers),
		core.WedgePartialsOf(before.g, centers),
	)
	return partialsFromCore(d)
}

// SumWedgePartialDeltas composes sorted signed deltas by summing
// counts per pair key, dropping pairs that cancel to zero — used to
// collapse a run of consecutive per-version deltas into one frame.
func SumWedgePartialDeltas(deltas ...[]WedgePartial) []WedgePartial {
	cs := make([][]core.PairCount, len(deltas))
	for i, d := range deltas {
		cs[i] = partialsToCore(d)
	}
	return partialsFromCore(core.SumPartialDeltas(cs...))
}

// ApplyWedgePartialDelta merges a signed delta into a base partial
// map, dropping pairs that reach zero. It errors if any pair would go
// negative — the base does not match the delta's starting version —
// so callers (the cluster router) can fall back to a full re-fetch
// instead of propagating a corrupt merge.
func ApplyWedgePartialDelta(base, delta []WedgePartial) ([]WedgePartial, error) {
	merged, err := core.ApplyPartialDelta(partialsToCore(base), partialsToCore(delta))
	if err != nil {
		return nil, err
	}
	return partialsFromCore(merged), nil
}

// MergeWedgePartials reduces sorted wedge partials — typically one per
// V1 partition of a graph — to the exact butterfly count of the union:
// a k-way merge over pair keys followed by Σ C(β, 2). With a single
// argument it computes that graph's own count.
func MergeWedgePartials(parts ...[]WedgePartial) int64 {
	key := func(p WedgePartial) uint64 { return uint64(p.V)<<32 | uint64(uint32(p.W)) }
	idx := make([]int, len(parts))
	var total int64
	for {
		var minKey uint64
		live := false
		for p, part := range parts {
			if idx[p] < len(part) {
				if k := key(part[idx[p]]); !live || k < minKey {
					minKey, live = k, true
				}
			}
		}
		if !live {
			return total
		}
		var beta int64
		for p, part := range parts {
			if idx[p] < len(part) && key(part[idx[p]]) == minKey {
				beta += part[idx[p]].Count
				idx[p]++
			}
		}
		total += beta * (beta - 1) / 2
	}
}
