package butterfly

import "butterfly/internal/core"

// WedgePartial is one entry of a V1-centered wedge partial map: Count
// wedges (v—u—w) whose center u lies in the graph and whose endpoints
// V < W lie in V2. Partials are the unit of distributed butterfly
// counting: partition a graph's V1 side into edge-disjoint subgraphs,
// export each partition's partials, and MergeWedgePartials reduces
// them to the exact global count — the cross-node generalisation of
// the hub-split partial-pair reduction used by the parallel engine.
type WedgePartial struct {
	V, W  int32
	Count int64
}

// WedgePartials returns the graph's V1-centered wedge frequency map
// over V2 endpoint pairs, sorted by (V, W). For a graph that is one
// partition of a larger graph (same dimensions, subset of V1 rows
// populated), the result is exactly that partition's contribution to
// the global wedge multiset.
func (g *Graph) WedgePartials() []WedgePartial {
	ps := core.WedgePartials(g.g)
	out := make([]WedgePartial, len(ps))
	for i, p := range ps {
		out[i] = WedgePartial{V: p.V, W: p.W, Count: p.C}
	}
	return out
}

// MergeWedgePartials reduces sorted wedge partials — typically one per
// V1 partition of a graph — to the exact butterfly count of the union:
// a k-way merge over pair keys followed by Σ C(β, 2). With a single
// argument it computes that graph's own count.
func MergeWedgePartials(parts ...[]WedgePartial) int64 {
	key := func(p WedgePartial) uint64 { return uint64(p.V)<<32 | uint64(uint32(p.W)) }
	idx := make([]int, len(parts))
	var total int64
	for {
		var minKey uint64
		live := false
		for p, part := range parts {
			if idx[p] < len(part) {
				if k := key(part[idx[p]]); !live || k < minKey {
					minKey, live = k, true
				}
			}
		}
		if !live {
			return total
		}
		var beta int64
		for p, part := range parts {
			if idx[p] < len(part) && key(part[idx[p]]) == minKey {
				beta += part[idx[p]].Count
				idx[p]++
			}
		}
		total += beta * (beta - 1) / 2
	}
}
