package butterfly

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/flame"
	"butterfly/internal/sparse"
)

// maxDerivationCells bounds VerifyDerivation's dense verification; the
// FLAME replay is O(|V1|²·|V2|) per boundary and exists to certify
// algorithm structure on small instances, not to recount big graphs.
const maxDerivationCells = 1 << 16

// VerifyDerivation replays the FLAME proof obligations of all eight
// derived algorithms on this graph: each algorithm's literal update
// expression (the paper's equation (18) family) is executed
// iteration by iteration, and the corresponding loop invariant's
// closed form (Figs 4–5) is checked at every loop boundary, along with
// the initialization and termination obligations. A nil return means
// the derivation argument holds on this instance end to end.
//
// Dense verification: the graph must satisfy |V1|·|V2| ≤ 65536.
func (g *Graph) VerifyDerivation() error {
	cells := int64(g.NumV1()) * int64(g.NumV2())
	if cells > maxDerivationCells {
		return fmt.Errorf("butterfly: VerifyDerivation needs |V1|·|V2| ≤ %d, got %d (use a subgraph)", maxDerivationCells, cells)
	}
	return flame.CheckAll(sparse.ToDense(g.g.Adj()))
}

// DerivationTrace reports, for one invariant, the invariant's
// closed-form value after each loop iteration — the column a FLAME
// worksheet's "state after update" row takes on a concrete graph.
// Index i holds the value with i exposed vertices; the last entry
// equals Count(). Same size bound as VerifyDerivation.
func (g *Graph) DerivationTrace(inv Invariant) ([]int64, error) {
	if inv < Invariant1 || inv > Invariant8 {
		return nil, fmt.Errorf("butterfly: DerivationTrace needs a concrete invariant, got %v", inv)
	}
	cells := int64(g.NumV1()) * int64(g.NumV2())
	if cells > maxDerivationCells {
		return nil, fmt.Errorf("butterfly: DerivationTrace needs |V1|·|V2| ≤ %d, got %d", maxDerivationCells, cells)
	}
	d := sparse.ToDense(g.g.Adj())
	cinv := core.Invariant(inv)
	n := g.NumV2()
	if !cinv.PartitionsV2() {
		n = g.NumV1()
	}
	out := make([]int64, n+1)
	for exposed := 0; exposed <= n; exposed++ {
		out[exposed] = flame.InvariantValue(d, cinv, exposed)
	}
	return out, nil
}
