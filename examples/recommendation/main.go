// Recommendation: find the dense core of a synthetic user–item graph
// with k-wing peeling, the workload the paper's introduction motivates
// (butterfly-based dense-region discovery in bipartite networks).
//
// A power-law user–item graph is generated, edge supports are computed,
// and the k-wing subgraph is extracted for increasing k. Edges that
// survive deep peeling connect users and items embedded in many shared
// 2×2 co-purchase patterns — the natural candidates for "users like
// you also bought".
//
// Run with: go run ./examples/recommendation
package main

import (
	"fmt"
	"log"

	"butterfly"
)

func main() {
	const (
		users = 3000
		items = 2000
		edges = 18000
	)
	g, err := butterfly.GeneratePowerLaw(users, items, edges, 0.8, 0.7, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user–item graph:", g)
	fmt.Printf("total butterflies (co-purchase squares): %d\n\n", g.CountParallel(0))

	// Sweep k and watch the graph contract to its dense core.
	fmt.Println("k-wing peeling:")
	fmt.Println("  k      edges  active-users  active-items")
	for _, k := range []int64{0, 1, 2, 4, 8, 16, 32, 64} {
		wing, err := g.KWing(k)
		if err != nil {
			log.Fatal(err)
		}
		au, ai := activeSides(wing)
		fmt.Printf("  %-5d %6d  %12d  %12d\n", k, wing.NumEdges(), au, ai)
		if wing.NumEdges() == 0 {
			break
		}
	}

	// Wing numbers rank individual edges: recommend along the deepest.
	wings := g.WingNumbers()
	best := wings[0]
	for _, w := range wings {
		if w.Count > best.Count {
			best = w
		}
	}
	fmt.Printf("\nstrongest co-purchase edge: user %d — item %d (wing number %d)\n",
		best.U, best.V, best.Count)

	// Items to recommend to best.U: neighbors of users who share the
	// strongest item, ranked by butterfly support.
	seen := map[int]bool{}
	for _, other := range g.NeighborsV2(best.V) {
		if other == best.U {
			continue
		}
		for _, item := range g.NeighborsV1(other) {
			if item != best.V && !g.HasEdge(best.U, item) {
				seen[item] = true
			}
		}
	}
	fmt.Printf("candidate recommendations for user %d: %d items\n", best.U, len(seen))
}

// activeSides counts non-isolated vertices per side.
func activeSides(g *butterfly.Graph) (v1, v2 int) {
	for u := 0; u < g.NumV1(); u++ {
		if g.DegreeV1(u) > 0 {
			v1++
		}
	}
	for v := 0; v < g.NumV2(); v++ {
		if g.DegreeV2(v) > 0 {
			v2++
		}
	}
	return v1, v2
}
