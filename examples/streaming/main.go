// Streaming: maintain an exact butterfly count over an evolving
// user–tag graph with DynamicCounter — no recounting as edges arrive
// and expire.
//
// A sliding window of tagging events flows through the counter:
// arrivals insert edges, expirations delete them, and after every
// batch the butterfly count (the graph's "co-tagging cohesion") is
// available in O(1). A periodic audit recounts from scratch with the
// static family and asserts exact agreement.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"butterfly"
)

const (
	users   = 800
	tags    = 400
	window  = 4000 // edges kept live
	batches = 12
	batch   = 1000
)

type event struct{ u, v int }

func main() {
	counter, err := butterfly.NewDynamicCounter(users, tags)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var live []event

	fmt.Println("batch  edges   butterflies  created  expired-destroyed")
	for b := 0; b < batches; b++ {
		var created, destroyed int64

		// Arrivals: hub-biased tagging events.
		for i := 0; i < batch; i++ {
			e := event{
				u: int(float64(users) * rng.Float64() * rng.Float64()), // mild skew
				v: rng.Intn(tags),
			}
			added, delta, err := counter.InsertEdge(e.u, e.v)
			if err != nil {
				log.Fatal(err)
			}
			if added {
				live = append(live, e)
				created += delta
			}
		}

		// Expirations: oldest events fall out of the window.
		for len(live) > window {
			e := live[0]
			live = live[1:]
			removed, delta, err := counter.DeleteEdge(e.u, e.v)
			if err != nil {
				log.Fatal(err)
			}
			if removed {
				destroyed += delta
			}
		}

		fmt.Printf("%5d  %5d  %11d  %7d  %17d\n",
			b, counter.NumEdges(), counter.Count(), created, destroyed)
	}

	// Audit: the static family recounts the final window from scratch.
	snapshot := counter.Snapshot()
	static := snapshot.CountParallel(0)
	fmt.Printf("\naudit: dynamic=%d static=%d ", counter.Count(), static)
	if counter.Count() != static {
		log.Fatal("MISMATCH — dynamic maintenance diverged")
	}
	fmt.Println("(exact agreement)")

	// The snapshot is a full Graph: everything else composes.
	if core3, err := snapshot.KWing(3); err == nil {
		fmt.Printf("3-wing of the live window: %s\n", core3)
	}

	// When even the window cannot be stored, the O(reservoir)-memory
	// estimator tracks the same quantity approximately: replay the
	// final window as a stream into a half-size reservoir (the p₄ scaling makes much smaller reservoirs high-variance on windows this small).
	est, err := butterfly.NewStreamEstimator(users, tags, window/2, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range snapshot.Edges() {
		if err := est.Add(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("reservoir estimate (%d of %d edges kept): ≈%.0f vs exact %d\n",
		window/2, est.Seen(), est.Estimate(), counter.Count())
}
