// Anomaly: find a planted near-biclique (e.g. a review-fraud ring) in
// a user–product graph using butterfly density.
//
// Fraud rings leave a distinctive footprint: a small set of accounts
// all reviewing the same small set of products forms a dense biclique,
// and bicliques are butterfly factories — C(a,2)·C(b,2) motifs from
// a·b edges. The detector needs no labels: edges whose butterfly
// support is extreme relative to the graph's typical support sit
// inside such blocks. We plant a 12×10 ring in an organic-looking
// power-law graph and recover it from edge supports alone, then
// confirm with k-wing peeling.
//
// Run with: go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"sort"

	"butterfly"
)

const (
	users    = 4000
	products = 3000
	edges    = 20000
	ringU    = 12 // planted ring: 12 accounts × 10 products, fully connected
	ringP    = 10
)

func main() {
	organic, err := butterfly.GeneratePowerLaw(users, products, edges, 0.7, 0.7, 303)
	if err != nil {
		log.Fatal(err)
	}

	// Plant the ring on arbitrary mid-popularity vertices.
	g := organic.FilterEdges(func(u, v int) bool { return true })
	b := butterfly.NewBuilder(users, products)
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	ringUsers := map[int]bool{}
	ringProds := map[int]bool{}
	for i := 0; i < ringU; i++ {
		u := 1000 + 37*i
		ringUsers[u] = true
		for j := 0; j < ringP; j++ {
			p := 800 + 23*j
			ringProds[p] = true
			b.AddEdge(u, p)
		}
	}
	g = b.MustBuild()
	fmt.Println("graph with planted ring:", g)

	// Raw support is the wrong detector: organic hubs also sit in many
	// butterflies. What distinguishes a ring is *saturation* — its
	// edges realize almost all the butterflies their endpoint degrees
	// could possibly support. For edge (u, v) the ceiling is
	// (deg u − 1)·(deg v − 1); organic hub edges sit far below it.
	type scored struct {
		butterfly.EdgeCount
		saturation float64
	}
	var candidates []scored
	for _, e := range g.EdgeSupports() {
		du, dv := g.DegreeV1(e.U)-1, g.DegreeV2(e.V)-1
		if e.Count < 20 || du <= 0 || dv <= 0 {
			continue
		}
		candidates = append(candidates, scored{e, float64(e.Count) / float64(du*dv)})
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].saturation > candidates[j].saturation })

	flagged := candidates
	if len(flagged) > ringU*ringP {
		flagged = flagged[:ringU*ringP]
	}
	hitU := map[int]bool{}
	hitP := map[int]bool{}
	truePos := 0
	for _, e := range flagged {
		hitU[e.U] = true
		hitP[e.V] = true
		if ringUsers[e.U] && ringProds[e.V] {
			truePos++
		}
	}
	fmt.Printf("flagged %d high-saturation edges: %d inside the planted ring (precision %.0f%%)\n",
		len(flagged), truePos, 100*float64(truePos)/float64(len(flagged)))
	fmt.Printf("suspects: %d accounts (%d real), %d products (%d real)\n",
		len(hitU), ringU, len(hitP), ringP)

	// Cross-check with wing numbers: ring edges support ≥ 99
	// butterflies purely inside the ring, so their wing number has a
	// floor the organic graph rarely reaches.
	wings := g.WingNumbersRounds(0)
	var ringMin, organicMax int64 = 1 << 62, 0
	for _, e := range wings {
		if ringUsers[e.U] && ringProds[e.V] {
			if e.Count < ringMin {
				ringMin = e.Count
			}
		} else if e.Count > organicMax {
			organicMax = e.Count
		}
	}
	fmt.Printf("wing numbers: ring min=%d vs organic max=%d\n", ringMin, organicMax)
	if ringMin > organicMax {
		fmt.Println("a wing-number threshold separates the ring perfectly ✓")
	}
}
