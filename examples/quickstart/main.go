// Quickstart: build a small labeled bipartite graph, count its
// butterflies with the automatically selected family member, inspect
// per-vertex participation, and enumerate the motifs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"butterfly"
)

func main() {
	// A people × interests graph, built straight from labels.
	g, err := butterfly.NewLabeledBuilder().
		AddEdge("alice", "go").AddEdge("alice", "graphs").AddEdge("alice", "hpc").
		AddEdge("bob", "go").AddEdge("bob", "graphs").
		AddEdge("carol", "graphs").AddEdge("carol", "hpc").AddEdge("carol", "chess").
		AddEdge("dave", "chess").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(g.Graph)
	fmt.Printf("butterflies: %d\n", g.Count())
	fmt.Printf("clustering coefficient: %.3f\n\n", g.ClusteringCoefficient())

	// Who sits in the most butterflies? (A butterfly = two people
	// sharing two interests — the smallest unit of "community".)
	perPerson, err := g.VertexButterflies(butterfly.V1)
	if err != nil {
		log.Fatal(err)
	}
	for id, count := range perPerson {
		name, err := g.LabelV1(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s participates in %d butterflies\n", name, count)
	}
	fmt.Println()

	// Enumerate them explicitly, translating ids back to labels.
	g.Butterflies(func(b butterfly.Butterfly) bool {
		p1, _ := g.LabelV1(b.U1)
		p2, _ := g.LabelV1(b.U2)
		i1, _ := g.LabelV2(b.W1)
		i2, _ := g.LabelV2(b.W2)
		fmt.Printf("butterfly: {%s, %s} × {%s, %s}\n", p1, p2, i1, i2)
		return true
	})
}
