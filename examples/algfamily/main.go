// Algfamily: a tour of the whole algorithm family on one graph —
// run all eight invariants sequentially and in parallel, check they
// agree with each other and with the sampling estimators, and show the
// paper's selection rule in action on graphs with opposite side
// ratios.
//
// Run with: go run ./examples/algfamily
package main

import (
	"fmt"
	"log"
	"time"

	"butterfly"
)

func main() {
	// The record-labels stand-in has |V1| ≫ |V2|: the paper's rule says
	// the column-partitioned family (invariants 1–4) should win.
	g, err := butterfly.GeneratePaperDataset("record-labels", 4)
	if err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("graph: %s\n", g)
	fmt.Printf("wedges to enumerate: family 1-4 → %d, family 5-8 → %d\n\n",
		s.WedgesV2, s.WedgesV1)

	fmt.Println("invariant   sequential   6 threads    count")
	var want int64
	for inv := butterfly.Invariant1; inv <= butterfly.Invariant8; inv++ {
		t0 := time.Now()
		seq, err := g.CountInvariant(inv)
		if err != nil {
			log.Fatal(err)
		}
		seqD := time.Since(t0)

		t0 = time.Now()
		par, err := g.CountWith(butterfly.CountOptions{Invariant: inv, Threads: 6})
		if err != nil {
			log.Fatal(err)
		}
		parD := time.Since(t0)

		if inv == butterfly.Invariant1 {
			want = seq
		}
		if seq != want || par != want {
			log.Fatalf("%v disagreed: %d / %d vs %d", inv, seq, par, want)
		}
		mark := " "
		if inv == butterfly.Invariant2 || inv == butterfly.Invariant3 ||
			inv == butterfly.Invariant6 || inv == butterfly.Invariant7 {
			mark = "*" // look-ahead member
		}
		fmt.Printf("%v%s       %8.3fs    %8.3fs    %d\n", inv, mark, seqD.Seconds(), parD.Seconds(), seq)
	}
	fmt.Println("(* = look-ahead member)")

	// Sampling estimators for scale-out scenarios.
	for _, strat := range []struct {
		name string
		s    butterfly.EstimateStrategy
	}{{"vertex sampling", butterfly.SampleVertices}, {"edge sampling", butterfly.SampleEdges}} {
		est, err := g.EstimateCount(butterfly.EstimateOptions{Strategy: strat.s, Samples: 2000, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (2000 samples): ≈%.0f (exact %d, error %.1f%%)\n",
			strat.name, est, want, 100*relErr(est, want))
	}

	// Full verification: all counters, including independent baselines.
	t0 := time.Now()
	if err := g.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVerify(): 8 invariants + wedge-hash + vertex-priority + SpGEMM all agree (%.2fs)\n",
		time.Since(t0).Seconds())
}

func relErr(est float64, exact int64) float64 {
	if exact == 0 {
		return 0
	}
	d := est - float64(exact)
	if d < 0 {
		d = -d
	}
	return d / float64(exact)
}
