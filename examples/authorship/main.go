// Authorship: analyze an author–paper network (the arXiv cond-mat
// stand-in from the paper's Fig 9) with per-vertex butterfly counts
// and k-tip peeling.
//
// An author's butterfly count measures how often they share *pairs* of
// papers with the same co-author — repeated collaboration rather than
// one-off contact. The k-tip subgraph keeps only authors embedded in
// at least k such patterns: the stable collaboration core.
//
// Run with: go run ./examples/authorship
package main

import (
	"fmt"
	"log"
	"sort"

	"butterfly"
)

func main() {
	// |V1| = 16726 authors, |V2| = 22015 papers, |E| = 58595, exactly
	// as the paper's Fig 9 (synthetic stand-in; pass a real KONECT file
	// to ReadKONECTFile to analyze the original).
	g, err := butterfly.GeneratePaperDataset("arxiv-cond-mat", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("author–paper graph:", g)

	total := g.CountParallel(0)
	fmt.Printf("butterflies (repeated-collaboration motifs): %d\n", total)
	fmt.Printf("clustering coefficient: %.4f\n\n", g.ClusteringCoefficient())

	// Rank authors by butterfly participation.
	perAuthor, err := g.VertexButterflies(butterfly.V1)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		author int
		count  int64
	}
	top := make([]ranked, 0, len(perAuthor))
	for a, c := range perAuthor {
		if c > 0 {
			top = append(top, ranked{a, c})
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].count > top[j].count })
	fmt.Printf("authors in ≥1 butterfly: %d of %d\n", len(top), g.NumV1())
	fmt.Println("top collaborators:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  author %-6d in %d butterflies (degree %d)\n",
			top[i].author, top[i].count, g.DegreeV1(top[i].author))
	}

	// Peel to the collaboration core.
	fmt.Println("\nk-tip peeling (author side):")
	fmt.Println("  k      authors-left  edges-left")
	for _, k := range []int64{1, 2, 5, 10, 50} {
		tip, err := g.KTip(k, butterfly.V1)
		if err != nil {
			log.Fatal(err)
		}
		authors := 0
		for u := 0; u < tip.NumV1(); u++ {
			if tip.DegreeV1(u) > 0 {
				authors++
			}
		}
		fmt.Printf("  %-5d %13d  %10d\n", k, authors, tip.NumEdges())
		if tip.NumEdges() == 0 {
			break
		}
	}

	// Tip numbers give the whole hierarchy in one pass.
	tips, err := g.TipNumbers(butterfly.V1)
	if err != nil {
		log.Fatal(err)
	}
	maxTip := int64(0)
	for _, t := range tips {
		if t > maxTip {
			maxTip = t
		}
	}
	fmt.Printf("\ndeepest tip number: %d (the innermost collaboration shell)\n", maxTip)

	// Is the butterfly count explained by degrees alone? Compare with
	// the degree-preserving null model (Maslov–Sneppen rewiring).
	sig, err := g.ButterflySignificance(butterfly.SignificanceOptions{Samples: 8, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("null-model check: observed %d vs null %.0f ± %.0f (z = %.1f)\n",
		sig.Observed, sig.NullMean, sig.NullStd, sig.ZScore)
	if sig.ZScore > 2 {
		fmt.Println("collaboration structure is significantly butterfly-rich beyond degrees")
	} else {
		fmt.Println("butterfly count is consistent with the degree sequence alone")
	}
}
