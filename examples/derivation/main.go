// Derivation: watch the FLAME argument execute. For a small random
// graph, every family member's loop invariant is traced iteration by
// iteration (the "state after update" column of the paper's
// worksheet), and the three proof obligations — initialization,
// maintenance, termination — are machine-checked with
// VerifyDerivation.
//
// The traces make the family's structure visible: eager invariants
// (1, 4, 5, 8) climb only as both pair endpoints are exposed, while
// look-ahead invariants (2, 3, 6, 7) bank a pair's butterflies the
// moment its first endpoint is exposed, finishing their climb earlier.
//
// Run with: go run ./examples/derivation
package main

import (
	"fmt"
	"log"

	"butterfly"
)

func main() {
	g, err := butterfly.GeneratePowerLaw(9, 7, 30, 0.6, 0.6, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)
	fmt.Println("butterflies:", g.Count())
	fmt.Println()

	// Machine-check all 24 proof obligations (8 invariants × 3).
	if err := g.VerifyDerivation(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("FLAME proof obligations hold for all 8 derived algorithms ✓")
	fmt.Println()

	// Trace each invariant's value across the loop.
	fmt.Println("invariant value after exposing k vertices (columns of the worksheet):")
	for inv := butterfly.Invariant1; inv <= butterfly.Invariant8; inv++ {
		trace, err := g.DerivationTrace(inv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v: ", inv)
		for _, v := range trace {
			fmt.Printf("%4d", v)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("every row starts at 0 (initialization) and ends at the")
	fmt.Println("postcondition ΞG (termination); maintenance holds in between.")
}
