package butterfly

import (
	"testing"
)

// TestMergeWedgePartialsDifferential: partition V1 of generator-shaped
// graphs by hash, export per-partition partials, and assert the merged
// reduction equals the single-node exact count — the correctness core
// of distributed counting.
func TestMergeWedgePartialsDifferential(t *testing.T) {
	shapes := map[string]*Graph{}
	for _, spec := range []struct {
		name string
		gen  func() (*Graph, error)
	}{
		{"power-law", func() (*Graph, error) { return GeneratePowerLaw(120, 90, 900, 2.1, 2.3, 7) }},
		{"gnm", func() (*Graph, error) { return GenerateGnm(80, 60, 600, 11) }},
		{"complete", func() (*Graph, error) { return GenerateComplete(9, 8) }},
		{"pref-attach", func() (*Graph, error) { return GeneratePreferentialAttachment(100, 70, 700, 5) }},
	} {
		g, err := spec.gen()
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		shapes[spec.name] = g
	}
	for name, g := range shapes {
		exact := g.Count()
		for _, p := range []int{1, 2, 4} {
			partials := make([][]WedgePartial, p)
			for i := range partials {
				sub := partitionByV1(t, g, i, p)
				partials[i] = sub.WedgePartials()
			}
			if got := MergeWedgePartials(partials...); got != exact {
				t.Errorf("%s p=%d: merged %d, exact %d", name, p, got, exact)
			}
		}
		if got := MergeWedgePartials(g.WedgePartials()); got != exact {
			t.Errorf("%s: single partial merge %d, exact %d", name, got, exact)
		}
	}
}

// partitionByV1 keeps only the edges whose V1 endpoint hashes to
// partition i of p, preserving the graph's dimensions.
func partitionByV1(t *testing.T, g *Graph, i, p int) *Graph {
	t.Helper()
	b := NewBuilder(g.NumV1(), g.NumV2())
	for _, e := range g.Edges() {
		if int(uint64(e[0])*2654435761%uint64(p)) == i {
			b.AddEdge(e[0], e[1])
		}
	}
	sub, err := b.Build()
	if err != nil {
		t.Fatalf("partition build: %v", err)
	}
	return sub
}
