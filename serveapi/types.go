// Package serveapi defines the JSON wire types of the bfserved HTTP
// API — the request and response bodies exchanged by internal/serve
// (the server) and butterfly/client (the Go client). Keeping them in
// one non-internal package lets external programs construct requests
// and decode responses with the exact structs the server uses.
//
// See docs/SERVING.md for the full API reference.
package serveapi

// QoS headers (see docs/QOS.md). Requests may carry them instead of
// the body's tenant/priority fields (the body wins when both are
// present); /v1 responses echo the resolved values back, and a cluster
// router relays both directions unchanged, so a client can always see
// which bucket and lane it was actually charged as. /v1 only.
const (
	// TenantHeader names the tenant the request is charged to.
	TenantHeader = "X-Bf-Tenant"
	// PriorityHeader selects the lane: "interactive" (default) or
	// "batch".
	PriorityHeader = "X-Bf-Priority"
)

// RegisterRequest loads a graph into the server's registry under a
// name. Exactly one source must be set: Dataset (a synthetic stand-in
// of the paper's datasets, optionally scaled), Path (a server-side
// KONECT or MatrixMarket file; requires the server's -allow-path-load
// flag), or inline Edges with M×N dimensions.
type RegisterRequest struct {
	Name string `json:"name"`
	// Replace allows overwriting an existing graph (its version
	// counter restarts at 1).
	Replace bool `json:"replace,omitempty"`

	// Dataset names a synthetic paper dataset (see bfc -list); Scale
	// shrinks it (0 or 1 = full size).
	Dataset string `json:"dataset,omitempty"`
	Scale   int    `json:"scale,omitempty"`

	// Path is a server-side file; Format is "konect" (default) or
	// "matrixmarket".
	Path   string `json:"path,omitempty"`
	Format string `json:"format,omitempty"`

	// Edges is an inline edge list over vertex sets of size M and N.
	M     int      `json:"m,omitempty"`
	N     int      `json:"n,omitempty"`
	Edges [][2]int `json:"edges,omitempty"`

	// Partitions > 1 asks a cluster router to hash-partition the
	// graph's V1 side across that many shard-resident partition graphs
	// and answer counts by scatter-gather reduction (see
	// docs/CLUSTER.md). Only meaningful against a router; a single
	// bfserved rejects it.
	Partitions int `json:"partitions,omitempty"`
}

// GraphInfo describes one registered graph at its current version.
// State is empty for registered (exact-countable) graphs; graphs still
// streaming through /v1/ingest appear in listings with State "loading",
// Version 0, NumEdges = edges seen so far and Butterflies = the current
// reservoir estimate (rounded).
type GraphInfo struct {
	Name        string  `json:"name"`
	Version     uint64  `json:"version"`
	State       string  `json:"state,omitempty"`
	NumV1       int     `json:"v1"`
	NumV2       int     `json:"v2"`
	NumEdges    int64   `json:"edges"`
	Butterflies int64   `json:"butterflies"`
	Density     float64 `json:"density"`
	// Partitions, set only by a cluster router, reports how many
	// shard-resident V1 partitions the graph spans (absent/0 for an
	// ordinary single-shard graph). For partitioned graphs Version is
	// the sum of the partition versions — monotone under mutation.
	Partitions int        `json:"partitions,omitempty"`
	Trace      *TraceSpan `json:"trace,omitempty"`
}

// GraphList is the response of GET /graphs.
type GraphList struct {
	Graphs []GraphInfo `json:"graphs"`
	Trace  *TraceSpan  `json:"trace,omitempty"`
}

// ResultMeta is the metadata block shared by every query response
// (count, vertex-counts, edge-supports, estimate, peel): which graph
// snapshot answered, and how. It is embedded first in each response
// type, so graph/version keep their historical leading position on
// the wire and the optional fields marshal only when set — a plain
// single-node exact answer is byte-identical to the pre-ResultMeta
// shape on both API surfaces.
type ResultMeta struct {
	// Graph and Version identify the snapshot the answer was computed
	// on. A cluster router reports the sum of partition versions.
	Graph   string `json:"graph"`
	Version uint64 `json:"version"`
	// Cache, when present, reports a body produced outside the result
	// cache: "bypass" for ?debug=true and degrade-to-estimate answers
	// (never stored), "merged" for a router answer served from its
	// pinned merged reduction. Cacheable bodies omit it — the X-Cache
	// response header is the per-request hit/miss/coalesced signal, so
	// identical queries can share one cached body across tenants.
	Cache string `json:"cache,omitempty"`
	// Degraded marks an approximate answer served in place of an exact
	// one: the admission limiter's degrade-to-estimate path, or a
	// router reduction with dead partitions.
	Degraded bool `json:"degraded,omitempty"`
	// Partitions, set only by a cluster router, reports that the
	// answer was reduced from that many shard-resident partitions.
	Partitions int `json:"partitions,omitempty"`
}

// CountRequest asks for an exact butterfly count. All fields are
// optional — the zero value runs the automatically selected family
// member sequentially. Algorithm is one of "family" (default),
// "wedge-hash", "vertex-priority", "sort-aggregate", "spgemm";
// Invariant picks the family member (0 = auto, 1–8); Hub is "auto",
// "never" or "always"; Agg is the wedge-aggregation mode "auto"
// (default), "sort", "hash", "hist" or "batch" (family algorithm
// only); Order is "natural", "degree-asc" or "degree-desc". Threads
// ≤ 0 means one worker per CPU.
//
// Tenant and Priority identify the caller to the admission
// controller (see docs/QOS.md): Tenant selects the token bucket and
// fair-share weight the request is charged against (unknown or empty
// names fall back to the default tenant) and Priority selects the
// lane, "interactive" (default) or "batch". Both are /v1-only — the
// legacy surface always runs as the default tenant — and may equally
// be supplied as X-Bf-Tenant / X-Bf-Priority headers; body fields
// win when both are present. The same pair exists on every /v1
// request type that passes admission.
type CountRequest struct {
	Algorithm string `json:"algorithm,omitempty"`
	Invariant int    `json:"invariant,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	BlockSize int    `json:"block,omitempty"`
	Order     string `json:"order,omitempty"`
	Hub       string `json:"hub,omitempty"`
	Agg       string `json:"agg,omitempty"`
	// TimeoutMillis overrides the server's default per-request
	// deadline (capped by the server's maximum).
	TimeoutMillis int    `json:"timeout_ms,omitempty"`
	Tenant        string `json:"tenant,omitempty"`
	Priority      string `json:"priority,omitempty"`
}

// CountResponse reports an exact count. ResultMeta identifies the
// graph snapshot the count was computed on. Agg, present for family
// counts, is the wedge-aggregation mode the count actually ran — the
// concrete resolution of the request's "auto", never "auto" itself.
// Trace is present only when the request asked for ?debug=true on
// the /v1 surface.
type CountResponse struct {
	ResultMeta
	Butterflies int64      `json:"butterflies"`
	Agg         string     `json:"agg,omitempty"`
	ElapsedMS   int64      `json:"elapsed_ms"`
	Trace       *TraceSpan `json:"trace,omitempty"`
}

// VertexCountsRequest asks for the per-vertex butterfly counts of one
// side ("v1" or "v2", default "v1"), returning the Top highest-count
// vertices (default 100; ≤ 0 returns all). Tenant/Priority as on
// CountRequest.
type VertexCountsRequest struct {
	Side          string `json:"side,omitempty"`
	Top           int    `json:"top,omitempty"`
	TimeoutMillis int    `json:"timeout_ms,omitempty"`
	Tenant        string `json:"tenant,omitempty"`
	Priority      string `json:"priority,omitempty"`
}

// VertexCount pairs a vertex id with its butterfly count.
type VertexCount struct {
	Vertex int   `json:"vertex"`
	Count  int64 `json:"count"`
}

// VertexCountsResponse lists the top vertices by butterfly
// participation; Total sums over the whole side (twice the butterfly
// count).
type VertexCountsResponse struct {
	ResultMeta
	Side      string        `json:"side"`
	Total     int64         `json:"total"`
	Vertices  []VertexCount `json:"vertices"`
	ElapsedMS int64         `json:"elapsed_ms"`
	Trace     *TraceSpan    `json:"trace,omitempty"`
}

// EdgeSupportsRequest asks for the Top highest-support edges (default
// 100; ≤ 0 returns all). Tenant/Priority as on CountRequest.
type EdgeSupportsRequest struct {
	Top           int    `json:"top,omitempty"`
	TimeoutMillis int    `json:"timeout_ms,omitempty"`
	Tenant        string `json:"tenant,omitempty"`
	Priority      string `json:"priority,omitempty"`
}

// EdgeSupport is one edge with its butterfly support.
type EdgeSupport struct {
	U     int   `json:"u"`
	V     int   `json:"v"`
	Count int64 `json:"count"`
}

// EdgeSupportsResponse lists the top edges by butterfly support;
// Total sums supports over all edges (four times the butterfly count).
type EdgeSupportsResponse struct {
	ResultMeta
	Total     int64         `json:"total"`
	Edges     []EdgeSupport `json:"edges"`
	ElapsedMS int64         `json:"elapsed_ms"`
	Trace     *TraceSpan    `json:"trace,omitempty"`
}

// EstimateRequest asks for an approximate count. On a registered graph
// Strategy is "vertices", "edges", "sparsify" (keep-probability P), or
// "auto"/empty (edge sampling, the usual lowest-variance choice).
// Samples > 0 draws a fixed sample; Samples == 0 (vertices/edges only)
// sizes the sample adaptively: draws accumulate until the 95% CI
// half-width falls below TargetRelErr × estimate (default 5%), bounded
// by MaxSamples. Estimators are deterministic given Seed, which is
// part of the result-cache key. On a graph still loading through
// /v1/ingest every field is ignored: the response comes from the live
// reservoir estimator.
type EstimateRequest struct {
	Strategy      string  `json:"strategy,omitempty"`
	Samples       int     `json:"samples,omitempty"`
	P             float64 `json:"p,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	TargetRelErr  float64 `json:"target_rel_err,omitempty"`
	MaxSamples    int     `json:"max_samples,omitempty"`
	TimeoutMillis int     `json:"timeout_ms,omitempty"`
	Tenant        string  `json:"tenant,omitempty"`
	Priority      string  `json:"priority,omitempty"`
}

// EstimateResponse reports an estimated count with its error bars.
// StdErr is the standard error of the estimator and CI95 its 1.96×
// half-width (both absent for "sparsify", which reports no error
// bars). On a registered graph Strategy names the estimator that ran
// and Samples the draws taken. On a loading graph State is "loading",
// Strategy is "reservoir", Version is 0, and EdgesSeen/ReservoirSize
// describe the stream; the estimate is exact (zero error bars) while
// the stream still fits the reservoir. ResultMeta.Degraded marks an
// estimate served in place of an exact count by the admission
// limiter's degrade-to-estimate path (see CountRequest) or a router
// reduction with dead partitions: PartitionsLive of
// ResultMeta.Partitions shard partials reduced and scaled by
// (Partitions/PartitionsLive)² (Strategy "partitions").
type EstimateResponse struct {
	ResultMeta
	State          string     `json:"state,omitempty"`
	Strategy       string     `json:"strategy,omitempty"`
	Estimate       float64    `json:"estimate"`
	StdErr         float64    `json:"stderr,omitempty"`
	CI95           float64    `json:"ci95,omitempty"`
	Samples        int        `json:"samples,omitempty"`
	EdgesSeen      int64      `json:"edges_seen,omitempty"`
	ReservoirSize  int        `json:"reservoir_size,omitempty"`
	PartitionsLive int        `json:"partitions_live,omitempty"`
	ElapsedMS      int64      `json:"elapsed_ms"`
	Trace          *TraceSpan `json:"trace,omitempty"`
}

// IngestRequest opens a streaming ingest (POST /v1/ingest): a graph of
// declared dimensions M×N that will receive edges in NDJSON batches
// (POST /v1/ingest/{name}/edges, one `[u,v]` JSON array per line).
// While loading, /v1/estimate answers from a reservoir estimator of
// the given capacity (server default when 0); sealing promotes the
// graph to a normal exact-countable registered graph. Replace drops an
// existing registered graph or open ingest of the same name. The
// in-flight ingest is not durable — only sealing writes to the WAL.
type IngestRequest struct {
	Name      string `json:"name"`
	M         int    `json:"m"`
	N         int    `json:"n"`
	Reservoir int    `json:"reservoir,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Replace   bool   `json:"replace,omitempty"`
}

// IngestResponse reports the live state of a streaming ingest: the
// stream bookkeeping and the current reservoir estimate with error
// bars. Accepted, present on append responses, counts the edges
// consumed from that request. Exact reports that the whole stream
// still fits the reservoir (the estimate is the true count so far).
type IngestResponse struct {
	Graph         string     `json:"graph"`
	State         string     `json:"state"`
	M             int        `json:"m"`
	N             int        `json:"n"`
	EdgesSeen     int64      `json:"edges_seen"`
	Accepted      int64      `json:"accepted,omitempty"`
	ReservoirSize int        `json:"reservoir_size"`
	ReservoirCap  int        `json:"reservoir_cap"`
	Estimate      float64    `json:"estimate"`
	StdErr        float64    `json:"stderr,omitempty"`
	CI95          float64    `json:"ci95,omitempty"`
	Exact         bool       `json:"exact,omitempty"`
	ElapsedMS     int64      `json:"elapsed_ms"`
	Trace         *TraceSpan `json:"trace,omitempty"`
}

// PeelRequest runs a k-tip or k-wing peel. Mode is "tip" (Side "v1"
// or "v2", default "v1") or "wing". Engine selects the peeling
// execution strategy: "delta" (default, incremental wedge-delta
// peeling) or "recount" (round-synchronous full recomputation). Both
// engines produce identical subgraphs; they differ in speed and in the
// Rounds they report. Threads ≤ 0 means one worker per CPU; neither
// the thread count nor the engine affects the result.
type PeelRequest struct {
	Mode          string `json:"mode"`
	K             int64  `json:"k"`
	Side          string `json:"side,omitempty"`
	Engine        string `json:"engine,omitempty"`
	Threads       int    `json:"threads,omitempty"`
	TimeoutMillis int    `json:"timeout_ms,omitempty"`
	Tenant        string `json:"tenant,omitempty"`
	Priority      string `json:"priority,omitempty"`
}

// PeelResponse summarizes the surviving subgraph. Engine is the engine
// that ran ("delta" or "recount"); Rounds is its number of peeled
// batches (delta) or fixpoint rounds (recount) — engine-specific by
// nature, which is why the result cache keys peels by engine.
type PeelResponse struct {
	ResultMeta
	Mode           string     `json:"mode"`
	K              int64      `json:"k"`
	Engine         string     `json:"engine"`
	Rounds         int        `json:"rounds"`
	EdgesRemaining int64      `json:"edges_remaining"`
	Butterflies    int64      `json:"butterflies"`
	ElapsedMS      int64      `json:"elapsed_ms"`
	Trace          *TraceSpan `json:"trace,omitempty"`
}

// MutateRequest applies a batch of edge mutations to a graph:
// Inserts first, then Deletes, as one atomic batch producing one new
// graph version. Endpoints must lie inside the graph's original
// dimensions. Duplicate inserts and missing deletes are counted but
// not errors.
type MutateRequest struct {
	Inserts [][2]int `json:"inserts,omitempty"`
	Deletes [][2]int `json:"deletes,omitempty"`
	// Tenant/Priority as on CountRequest (mutations pass the same
	// admission controller as queries).
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
}

// MutateResponse reports the effect of a mutation batch.
type MutateResponse struct {
	Graph string `json:"graph"`
	// Version of the snapshot produced by this batch.
	Version uint64 `json:"version"`
	// Inserted/Deleted count the mutations that actually changed the
	// edge set (duplicates and misses are excluded).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Created/Destroyed count butterflies added and removed.
	Created   int64 `json:"created"`
	Destroyed int64 `json:"destroyed"`
	// Count and Edges describe the new version.
	Count     int64      `json:"count"`
	Edges     int64      `json:"edges"`
	ElapsedMS int64      `json:"elapsed_ms"`
	Trace     *TraceSpan `json:"trace,omitempty"`
}

// CheckpointResponse reports a completed POST /admin/checkpoint: how
// many graphs were snapshotted and how far the write-ahead log was
// compacted. Requires the daemon to run with -data-dir (400
// otherwise).
type CheckpointResponse struct {
	Graphs         int        `json:"graphs"`
	WALBytesBefore int64      `json:"wal_bytes_before"`
	WALBytesAfter  int64      `json:"wal_bytes_after"`
	ElapsedMS      int64      `json:"elapsed_ms"`
	Trace          *TraceSpan `json:"trace,omitempty"`
}

// Health is the response of GET /healthz. Role identifies the process
// in a cluster topology: "single" (standalone daemon, the default),
// "shard" (a daemon behind a router), or "router" (the routing tier —
// client.DialCluster uses this to discover the router among a list of
// candidate addresses). Shards reports the number of configured shard
// backends, router role only.
type Health struct {
	Status   string     `json:"status"` // "ok" or "draining"
	Role     string     `json:"role,omitempty"`
	Graphs   int        `json:"graphs"`
	InFlight int        `json:"in_flight"`
	Queued   int        `json:"queued"`
	Shards   int        `json:"shards,omitempty"`
	Trace    *TraceSpan `json:"trace,omitempty"`
}

// ExportResponse is the body of GET /v1/internal/export/{name}: a
// graph's full published state, serialized for shard hand-off. The
// exporting shard answers from its current snapshot — which, under a
// durable store, is exactly the newest bfstore snapshot plus the
// replayed WAL tail — so rebalancing ships state without quiescing
// the graph.
type ExportResponse struct {
	Name    string   `json:"name"`
	M       int      `json:"m"`
	N       int      `json:"n"`
	Version uint64   `json:"version"`
	Count   int64    `json:"count"`
	Edges   [][2]int `json:"edges"`
}

// AdoptRequest is the body of POST /v1/internal/adopt: install an
// exported graph at its carried version. The adopting shard recounts
// the edge set and refuses the adoption if the recount disagrees with
// the carried count (the same logical-corruption gate store recovery
// applies), then WAL-logs the graph if the shard is durable.
type AdoptRequest struct {
	Name    string   `json:"name"`
	M       int      `json:"m"`
	N       int      `json:"n"`
	Version uint64   `json:"version"`
	Count   int64    `json:"count"`
	Edges   [][2]int `json:"edges"`
	Replace bool     `json:"replace,omitempty"`
}

// RebalanceRequest is the body of POST /admin/rebalance on a router.
// Shards, when non-empty, replaces the router's shard set (join/leave)
// before re-placing graphs; empty re-places against the current set.
type RebalanceRequest struct {
	Shards []string `json:"shards,omitempty"`
}

// MovedGraph is one graph (or partition) relocated by a rebalance.
type MovedGraph struct {
	Graph   string `json:"graph"`
	From    string `json:"from"`
	To      string `json:"to"`
	Version uint64 `json:"version"`
	Edges   int64  `json:"edges"`
}

// RebalanceResponse reports a completed /admin/rebalance: the new
// shard count, every graph movement (snapshot shipped from the old
// owner, adopted at the same version by the new one), and any
// failures (failed moves leave the graph at its old home and routing
// unchanged for it).
type RebalanceResponse struct {
	Shards    int          `json:"shards"`
	Moved     []MovedGraph `json:"moved"`
	Errors    []string     `json:"errors,omitempty"`
	ElapsedMS int64        `json:"elapsed_ms"`
	Trace     *TraceSpan   `json:"trace,omitempty"`
}

// Error is the JSON body of every non-2xx response on the legacy
// (unversioned) surface. The /v1 surface replaces it with
// ErrorEnvelope; the legacy routes keep emitting this shape for
// compatibility and are deprecated.
type Error struct {
	Status  int    `json:"status"`
	Message string `json:"error"`
}

// Machine-readable error codes carried by ErrorDetail.Code on the /v1
// surface. Clients should branch on these, not on message text.
const (
	// CodeInvalidArgument is a malformed or out-of-range request (400).
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound names an unknown graph (404).
	CodeNotFound = "not_found"
	// CodeAlreadyExists is a register collision without replace (409).
	CodeAlreadyExists = "already_exists"
	// CodeOverloaded is admission-control shedding (429): the shared
	// capacity or the caller's bounded tenant queue is full.
	// RetryAfterMS tells the client when to retry.
	CodeOverloaded = "overloaded"
	// CodeQuotaExhausted is a 429 specific to the caller: the tenant's
	// token bucket is empty, independent of server load. RetryAfterMS
	// is derived from the bucket's refill rate — the time until the
	// next token. See docs/QOS.md.
	CodeQuotaExhausted = "quota_exhausted"
	// CodeDeadlineExceeded is a request that ran past its deadline
	// (504).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeNotDurable is a state change the write-ahead log refused to
	// record; the change was rolled back (500).
	CodeNotDurable = "not_durable"
	// CodeLoading is an exact query against a graph still streaming
	// through /v1/ingest (409); use /v1/estimate or seal the ingest.
	CodeLoading = "loading"
	// CodeNotIngesting is an ingest operation (append/seal/abort)
	// against a graph that is not an open ingest — typically already
	// sealed (409).
	CodeNotIngesting = "not_ingesting"
	// CodeReplicaBehind is a read carrying an X-Bf-Min-Version floor
	// that this replica's snapshot has not reached yet (503); the
	// router retries another replica. RetryAfterMS carries a short
	// catch-up hint.
	CodeReplicaBehind = "replica_behind"
	// CodeUnavailable is a router answer when every candidate shard
	// for the request was unreachable after retries (503);
	// RetryAfterMS tells the client when to try again.
	CodeUnavailable = "unavailable"
	// CodeInternal is everything else (500).
	CodeInternal = "internal"
)

// ErrorDetail is the body of the /v1 error envelope: a machine code
// from the Code* constants, a human-readable message, an optional
// retry hint (with CodeOverloaded, CodeQuotaExhausted, and the 503
// codes), and — when the request asked for ?debug=true — the
// request's span tree.
type ErrorDetail struct {
	Code         string     `json:"code"`
	Message      string     `json:"message"`
	RetryAfterMS int64      `json:"retry_after_ms,omitempty"`
	Trace        *TraceSpan `json:"trace,omitempty"`
}

// ErrorEnvelope is the uniform JSON body of every non-2xx response on
// the /v1 surface, including 429 and 504.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// TraceSpan is one node of a request's span tree: a named stage with
// its start offset and duration in microseconds relative to the
// request start. Dropped counts children discarded past the server's
// per-span cap.
type TraceSpan struct {
	Name     string      `json:"name"`
	StartUS  int64       `json:"start_us"`
	DurUS    int64       `json:"dur_us"`
	Dropped  int         `json:"dropped,omitempty"`
	Children []TraceSpan `json:"children,omitempty"`
}
