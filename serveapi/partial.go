package serveapi

// Binary wire format of GET /v1/internal/partial/{name}: a shard's
// V1-centered wedge partial map, the unit the cluster router reduces
// into exact cross-shard butterfly counts. JSON would inflate the map
// (one entry per distinct V2 endpoint pair) by an order of magnitude,
// so partials travel as a compact delta-varint stream with a CRC32C
// trailer, mirroring the durable store's corruption discipline.
//
//	magic   "bfpart1\n" (8 bytes)
//	uvarint snapshot version
//	uvarint entry count
//	entries uvarint key delta, uvarint wedge count
//	        (key = uint64(V)<<32 | W, strictly increasing)
//	crc32c  Castagnoli over everything above, little-endian (4 bytes)

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"butterfly"
)

// partialMagic identifies (and versions) the partial wire format.
var partialMagic = [8]byte{'b', 'f', 'p', 'a', 'r', 't', '1', '\n'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodePartial serializes a graph snapshot's wedge partial map. The
// partials must be sorted by (V, W), which is what
// Graph.WedgePartials produces.
func EncodePartial(version uint64, partials []butterfly.WedgePartial) []byte {
	// Pre-size: magic + two small varints + ≤ 15 bytes per entry.
	buf := make([]byte, 0, 8+20+11*len(partials))
	buf = append(buf, partialMagic[:]...)
	buf = binary.AppendUvarint(buf, version)
	buf = binary.AppendUvarint(buf, uint64(len(partials)))
	prev := uint64(0)
	for _, p := range partials {
		key := uint64(p.V)<<32 | uint64(uint32(p.W))
		buf = binary.AppendUvarint(buf, key-prev)
		buf = binary.AppendUvarint(buf, uint64(p.Count))
		prev = key
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// DecodePartial parses an encoded partial map, verifying the magic
// and the CRC32C trailer before trusting any entry.
func DecodePartial(b []byte) (version uint64, partials []butterfly.WedgePartial, err error) {
	if len(b) < 8+4 || [8]byte(b[:8]) != partialMagic {
		return 0, nil, fmt.Errorf("serveapi: partial: bad magic or short payload (%d bytes)", len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return 0, nil, fmt.Errorf("serveapi: partial: crc mismatch (got %08x, want %08x)", got, want)
	}
	rest := body[8:]
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("serveapi: partial: truncated %s", what)
		}
		rest = rest[n:]
		return v, nil
	}
	if version, err = next("version"); err != nil {
		return 0, nil, err
	}
	count, err := next("entry count")
	if err != nil {
		return 0, nil, err
	}
	if count > uint64(len(rest)/2) {
		return 0, nil, fmt.Errorf("serveapi: partial: entry count %d exceeds payload", count)
	}
	partials = make([]butterfly.WedgePartial, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := next("key delta")
		if err != nil {
			return 0, nil, err
		}
		c, err := next("wedge count")
		if err != nil {
			return 0, nil, err
		}
		key := prev + delta
		if i > 0 && key <= prev {
			return 0, nil, fmt.Errorf("serveapi: partial: keys not strictly increasing at entry %d", i)
		}
		prev = key
		partials = append(partials, butterfly.WedgePartial{
			V:     int32(key >> 32),
			W:     int32(uint32(key)),
			Count: int64(c),
		})
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("serveapi: partial: %d trailing bytes after %d entries", len(rest), count)
	}
	return version, partials, nil
}
