package serveapi

import (
	"bytes"
	"testing"

	"butterfly"
)

func TestPartialRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		version  uint64
		partials []butterfly.WedgePartial
	}{
		{"empty", 7, nil},
		{"one", 1, []butterfly.WedgePartial{{V: 0, W: 1, Count: 3}}},
		{"many", 42, []butterfly.WedgePartial{
			{V: 0, W: 1, Count: 1},
			{V: 0, W: 5, Count: 2},
			{V: 3, W: 4, Count: 1000000},
			{V: 1 << 20, W: 1<<20 + 1, Count: 9},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc := EncodePartial(tc.version, tc.partials)
			v, got, err := DecodePartial(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if v != tc.version {
				t.Errorf("version = %d, want %d", v, tc.version)
			}
			if len(got) != len(tc.partials) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.partials))
			}
			for i := range got {
				if got[i] != tc.partials[i] {
					t.Errorf("entry %d = %+v, want %+v", i, got[i], tc.partials[i])
				}
			}
		})
	}
}

func TestPartialDecodeRejectsCorruption(t *testing.T) {
	enc := EncodePartial(3, []butterfly.WedgePartial{
		{V: 1, W: 2, Count: 5}, {V: 1, W: 9, Count: 1},
	})
	if _, _, err := DecodePartial(nil); err == nil {
		t.Error("nil payload accepted")
	}
	if _, _, err := DecodePartial(enc[:len(enc)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	flipped := bytes.Clone(enc)
	flipped[10] ^= 0xff
	if _, _, err := DecodePartial(flipped); err == nil {
		t.Error("bit-flipped payload accepted (crc not checked?)")
	}
	badMagic := bytes.Clone(enc)
	badMagic[0] = 'X'
	if _, _, err := DecodePartial(badMagic); err == nil {
		t.Error("bad magic accepted")
	}
	withJunk := append(bytes.Clone(enc[:len(enc)-4]), 0, 0)
	if _, _, err := DecodePartial(withJunk); err == nil {
		t.Error("trailing junk accepted")
	}
}
