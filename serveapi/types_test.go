package serveapi

import (
	"encoding/json"
	"reflect"
	"testing"
)

// wireCase pins one type's JSON shape: marshaling value must produce
// exactly want (this freezes field names, order and omitempty
// behavior), and unmarshaling want must reproduce value (round trip).
type wireCase struct {
	name  string
	value any // pointer to a populated struct
	want  string
}

// TestWireFormat is the compatibility contract of the HTTP API: if a
// rename or retag changes any byte of these golden strings, this test
// fails and the change is flagged as a wire-format break.
func TestWireFormat(t *testing.T) {
	cases := []wireCase{
		{
			"RegisterRequest",
			&RegisterRequest{Name: "g", Replace: true, Dataset: "github", Scale: 10,
				Path: "/d/g.tsv", Format: "konect", M: 2, N: 3, Edges: [][2]int{{0, 1}}},
			`{"name":"g","replace":true,"dataset":"github","scale":10,` +
				`"path":"/d/g.tsv","format":"konect","m":2,"n":3,"edges":[[0,1]]}`,
		},
		{
			"RegisterRequest zero omits optionals",
			&RegisterRequest{Name: "g"},
			`{"name":"g"}`,
		},
		{
			"GraphInfo",
			&GraphInfo{Name: "g", Version: 3, NumV1: 2, NumV2: 4, NumEdges: 8,
				Butterflies: 6, Density: 0.5},
			`{"name":"g","version":3,"v1":2,"v2":4,"edges":8,"butterflies":6,"density":0.5}`,
		},
		{
			"GraphList",
			&GraphList{Graphs: []GraphInfo{{Name: "g", Version: 1}}},
			`{"graphs":[{"name":"g","version":1,"v1":0,"v2":0,"edges":0,"butterflies":0,"density":0}]}`,
		},
		{
			"CountRequest",
			&CountRequest{Algorithm: "family", Invariant: 4, Threads: 2, BlockSize: 64,
				Order: "degree-asc", Hub: "auto", TimeoutMillis: 5000},
			`{"algorithm":"family","invariant":4,"threads":2,"block":64,` +
				`"order":"degree-asc","hub":"auto","timeout_ms":5000}`,
		},
		{
			"CountRequest zero is empty",
			&CountRequest{},
			`{}`,
		},
		{
			// The ResultMeta embedding keeps graph/version leading and
			// omits cache/degraded/partitions when unset, so the plain
			// exact-count body is byte-identical to the PR 5 golden.
			"CountResponse",
			&CountResponse{ResultMeta: ResultMeta{Graph: "g", Version: 2}, Butterflies: 36, ElapsedMS: 5},
			`{"graph":"g","version":2,"butterflies":36,"elapsed_ms":5}`,
		},
		{
			// The full metadata block: a router answer served from its
			// pinned merged reduction.
			"CountResponse merged meta",
			&CountResponse{ResultMeta: ResultMeta{Graph: "g", Version: 6, Cache: "merged", Partitions: 4},
				Butterflies: 36, ElapsedMS: 1},
			`{"graph":"g","version":6,"cache":"merged","partitions":4,` +
				`"butterflies":36,"elapsed_ms":1}`,
		},
		{
			// Tenant/priority ride any /v1 request that passes admission.
			"CountRequest with tenant",
			&CountRequest{Invariant: 2, Tenant: "dashboards", Priority: "interactive"},
			`{"invariant":2,"tenant":"dashboards","priority":"interactive"}`,
		},
		{
			"VertexCountsRequest",
			&VertexCountsRequest{Side: "v2", Top: 10, TimeoutMillis: 100},
			`{"side":"v2","top":10,"timeout_ms":100}`,
		},
		{
			"VertexCountsResponse",
			&VertexCountsResponse{ResultMeta: ResultMeta{Graph: "g", Version: 1}, Side: "v1", Total: 72,
				Vertices: []VertexCount{{Vertex: 3, Count: 9}}, ElapsedMS: 1},
			`{"graph":"g","version":1,"side":"v1","total":72,` +
				`"vertices":[{"vertex":3,"count":9}],"elapsed_ms":1}`,
		},
		{
			"EdgeSupportsRequest",
			&EdgeSupportsRequest{Top: 5, TimeoutMillis: 100},
			`{"top":5,"timeout_ms":100}`,
		},
		{
			"EdgeSupportsResponse",
			&EdgeSupportsResponse{ResultMeta: ResultMeta{Graph: "g", Version: 1}, Total: 144,
				Edges: []EdgeSupport{{U: 1, V: 2, Count: 4}}, ElapsedMS: 1},
			`{"graph":"g","version":1,"total":144,` +
				`"edges":[{"u":1,"v":2,"count":4}],"elapsed_ms":1}`,
		},
		{
			"EstimateRequest",
			&EstimateRequest{Strategy: "sparsify", Samples: 100, P: 0.25, Seed: 7, TimeoutMillis: 100},
			`{"strategy":"sparsify","samples":100,"p":0.25,"seed":7,"timeout_ms":100}`,
		},
		{
			"EstimateRequest adaptive knobs",
			&EstimateRequest{Strategy: "edges", Seed: 7, TargetRelErr: 0.02, MaxSamples: 5000},
			`{"strategy":"edges","seed":7,"target_rel_err":0.02,"max_samples":5000}`,
		},
		{
			"EstimateResponse",
			&EstimateResponse{ResultMeta: ResultMeta{Graph: "g", Version: 1}, Estimate: 35.5, ElapsedMS: 2},
			`{"graph":"g","version":1,"estimate":35.5,"elapsed_ms":2}`,
		},
		{
			// A sampling estimate on a registered graph carries the
			// estimator name, error bars and the draws taken.
			"EstimateResponse sampled",
			&EstimateResponse{ResultMeta: ResultMeta{Graph: "g", Version: 2}, Strategy: "edges", Estimate: 36,
				StdErr: 1.5, CI95: 2.94, Samples: 64, ElapsedMS: 1},
			`{"graph":"g","version":2,"strategy":"edges","estimate":36,` +
				`"stderr":1.5,"ci95":2.94,"samples":64,"elapsed_ms":1}`,
		},
		{
			// A reservoir answer on a loading graph: version 0, stream
			// bookkeeping instead of a sample count.
			"EstimateResponse loading",
			&EstimateResponse{ResultMeta: ResultMeta{Graph: "g"}, State: "loading", Strategy: "reservoir",
				Estimate: 120.5, StdErr: 4, CI95: 7.84, EdgesSeen: 900,
				ReservoirSize: 512, ElapsedMS: 1},
			`{"graph":"g","version":0,"state":"loading","strategy":"reservoir",` +
				`"estimate":120.5,"stderr":4,"ci95":7.84,"edges_seen":900,` +
				`"reservoir_size":512,"elapsed_ms":1}`,
		},
		{
			// The limiter's degrade-to-estimate path marks the metadata
			// block; degraded answers bypass the result cache, which the
			// body records.
			"EstimateResponse degraded",
			&EstimateResponse{ResultMeta: ResultMeta{Graph: "g", Version: 2, Cache: "bypass", Degraded: true},
				Strategy: "edges", Estimate: 36, Samples: 256, ElapsedMS: 1},
			`{"graph":"g","version":2,"cache":"bypass","degraded":true,` +
				`"strategy":"edges","estimate":36,"samples":256,"elapsed_ms":1}`,
		},
		{
			// A router reduction missing partitions: live/total plus the
			// shared degraded marker.
			"EstimateResponse partitions degraded",
			&EstimateResponse{ResultMeta: ResultMeta{Graph: "g", Version: 9, Degraded: true, Partitions: 4},
				Strategy: "partitions", Estimate: 144, PartitionsLive: 2, ElapsedMS: 1},
			`{"graph":"g","version":9,"degraded":true,"partitions":4,` +
				`"strategy":"partitions","estimate":144,"partitions_live":2,"elapsed_ms":1}`,
		},
		{
			"IngestRequest",
			&IngestRequest{Name: "g", M: 100, N: 200, Reservoir: 4096, Seed: 7, Replace: true},
			`{"name":"g","m":100,"n":200,"reservoir":4096,"seed":7,"replace":true}`,
		},
		{
			"IngestRequest zero omits optionals",
			&IngestRequest{Name: "g", M: 2, N: 3},
			`{"name":"g","m":2,"n":3}`,
		},
		{
			"IngestResponse",
			&IngestResponse{Graph: "g", State: "loading", M: 100, N: 200,
				EdgesSeen: 5000, Accepted: 1000, ReservoirSize: 4096, ReservoirCap: 4096,
				Estimate: 120.5, StdErr: 4, CI95: 7.84, ElapsedMS: 3},
			`{"graph":"g","state":"loading","m":100,"n":200,"edges_seen":5000,` +
				`"accepted":1000,"reservoir_size":4096,"reservoir_cap":4096,` +
				`"estimate":120.5,"stderr":4,"ci95":7.84,"elapsed_ms":3}`,
		},
		{
			// While the stream fits the reservoir the estimate is exact
			// and the error-bar fields are omitted.
			"IngestResponse exact regime",
			&IngestResponse{Graph: "g", State: "loading", M: 4, N: 4,
				EdgesSeen: 16, ReservoirSize: 16, ReservoirCap: 64, Estimate: 36,
				Exact: true, ElapsedMS: 1},
			`{"graph":"g","state":"loading","m":4,"n":4,"edges_seen":16,` +
				`"reservoir_size":16,"reservoir_cap":64,"estimate":36,` +
				`"exact":true,"elapsed_ms":1}`,
		},
		{
			// A loading graph in listings: state "loading", version 0.
			"GraphInfo loading",
			&GraphInfo{Name: "g", State: "loading", NumV1: 2, NumV2: 4, NumEdges: 8,
				Butterflies: 6, Density: 0.5},
			`{"name":"g","version":0,"state":"loading","v1":2,"v2":4,"edges":8,` +
				`"butterflies":6,"density":0.5}`,
		},
		{
			// Mode accepts "tip" or "wing"; both spellings are pinned,
			// as are both engine spellings.
			"PeelRequest tip",
			&PeelRequest{Mode: "tip", K: 8, Side: "v2", Engine: "recount", Threads: 4, TimeoutMillis: 100},
			`{"mode":"tip","k":8,"side":"v2","engine":"recount","threads":4,"timeout_ms":100}`,
		},
		{
			// Engine omits when empty (server defaults to delta).
			"PeelRequest wing",
			&PeelRequest{Mode: "wing", K: 2},
			`{"mode":"wing","k":2}`,
		},
		{
			"PeelResponse",
			&PeelResponse{ResultMeta: ResultMeta{Graph: "g", Version: 1}, Mode: "wing", K: 2,
				Engine: "delta", Rounds: 7,
				EdgesRemaining: 12, Butterflies: 9, ElapsedMS: 3},
			`{"graph":"g","version":1,"mode":"wing","k":2,` +
				`"engine":"delta","rounds":7,` +
				`"edges_remaining":12,"butterflies":9,"elapsed_ms":3}`,
		},
		{
			"MutateRequest",
			&MutateRequest{Inserts: [][2]int{{0, 1}}, Deletes: [][2]int{{2, 3}}},
			`{"inserts":[[0,1]],"deletes":[[2,3]]}`,
		},
		{
			"MutateResponse",
			&MutateResponse{Graph: "g", Version: 4, Inserted: 1, Deleted: 2,
				Created: 3, Destroyed: 4, Count: 30, Edges: 15, ElapsedMS: 6},
			`{"graph":"g","version":4,"inserted":1,"deleted":2,"created":3,` +
				`"destroyed":4,"count":30,"edges":15,"elapsed_ms":6}`,
		},
		{
			"CheckpointResponse",
			&CheckpointResponse{Graphs: 2, WALBytesBefore: 4096, WALBytesAfter: 0, ElapsedMS: 12},
			`{"graphs":2,"wal_bytes_before":4096,"wal_bytes_after":0,"elapsed_ms":12}`,
		},
		{
			"Health",
			&Health{Status: "draining", Graphs: 2, InFlight: 1, Queued: 3},
			`{"status":"draining","graphs":2,"in_flight":1,"queued":3}`,
		},
		{
			"Error",
			&Error{Status: 404, Message: "graph not found"},
			`{"status":404,"error":"graph not found"}`,
		},
		{
			// The /v1 envelope: code + message, optionals omitted.
			"ErrorEnvelope basic",
			&ErrorEnvelope{Error: ErrorDetail{Code: CodeNotFound, Message: "graph not found"}},
			`{"error":{"code":"not_found","message":"graph not found"}}`,
		},
		{
			// 429 carries a retry hint.
			"ErrorEnvelope overloaded",
			&ErrorEnvelope{Error: ErrorDetail{Code: CodeOverloaded, Message: "server overloaded", RetryAfterMS: 1000}},
			`{"error":{"code":"overloaded","message":"server overloaded","retry_after_ms":1000}}`,
		},
		{
			// Tenant bucket empty: same envelope, quota-specific code,
			// retry hint derived from the bucket refill.
			"ErrorEnvelope quota exhausted",
			&ErrorEnvelope{Error: ErrorDetail{Code: CodeQuotaExhausted,
				Message: `tenant "crawler" quota exhausted`, RetryAfterMS: 250}},
			`{"error":{"code":"quota_exhausted","message":"tenant \"crawler\" quota exhausted","retry_after_ms":250}}`,
		},
		{
			// Exact queries against a still-loading graph.
			"ErrorEnvelope loading",
			&ErrorEnvelope{Error: ErrorDetail{Code: CodeLoading, Message: `graph "g" is still loading; use the estimate endpoint or seal the ingest`}},
			`{"error":{"code":"loading","message":"graph \"g\" is still loading; use the estimate endpoint or seal the ingest"}}`,
		},
		{
			// Ingest operations against a name with no open ingest.
			"ErrorEnvelope not ingesting",
			&ErrorEnvelope{Error: ErrorDetail{Code: CodeNotIngesting, Message: `graph "g" has no open ingest`}},
			`{"error":{"code":"not_ingesting","message":"graph \"g\" has no open ingest"}}`,
		},
		{
			// Debug errors carry the span tree.
			"ErrorEnvelope with trace",
			&ErrorEnvelope{Error: ErrorDetail{Code: CodeDeadlineExceeded, Message: "deadline exceeded",
				Trace: &TraceSpan{Name: "request", DurUS: 42,
					Children: []TraceSpan{{Name: "registry", StartUS: 1, DurUS: 2}}}}},
			`{"error":{"code":"deadline_exceeded","message":"deadline exceeded",` +
				`"trace":{"name":"request","start_us":0,"dur_us":42,` +
				`"children":[{"name":"registry","start_us":1,"dur_us":2}]}}}`,
		},
		{
			"TraceSpan",
			&TraceSpan{Name: "kernel", StartUS: 10, DurUS: 100, Dropped: 2,
				Children: []TraceSpan{{Name: "core.count", StartUS: 12, DurUS: 90}}},
			`{"name":"kernel","start_us":10,"dur_us":100,"dropped":2,` +
				`"children":[{"name":"core.count","start_us":12,"dur_us":90}]}`,
		},
		{
			// Responses carry the trace only under ?debug=true; the
			// plain shape stays byte-identical (pinned above), and the
			// debug shape appends the trace last.
			"CountResponse with trace",
			&CountResponse{ResultMeta: ResultMeta{Graph: "g", Version: 2}, Butterflies: 36, ElapsedMS: 5,
				Trace: &TraceSpan{Name: "request", DurUS: 5000}},
			`{"graph":"g","version":2,"butterflies":36,"elapsed_ms":5,` +
				`"trace":{"name":"request","start_us":0,"dur_us":5000}}`,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.Marshal(tc.value)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if string(got) != tc.want {
				t.Fatalf("wire format changed:\n got %s\nwant %s", got, tc.want)
			}
			back := reflect.New(reflect.TypeOf(tc.value).Elem()).Interface()
			if err := json.Unmarshal([]byte(tc.want), back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !reflect.DeepEqual(back, tc.value) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, tc.value)
			}
		})
	}
}

// TestWireUnknownFieldsIgnored: clients and servers of different
// versions must coexist, so decoding tolerates unknown fields.
func TestWireUnknownFieldsIgnored(t *testing.T) {
	var req CountRequest
	if err := json.Unmarshal([]byte(`{"threads":3,"some_future_knob":true}`), &req); err != nil {
		t.Fatalf("unknown field rejected: %v", err)
	}
	if req.Threads != 3 {
		t.Fatalf("known field lost: %+v", req)
	}
}
