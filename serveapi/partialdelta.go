package serveapi

// Binary wire format of GET /v1/internal/partial/{name}?since=V: the
// signed change in a shard's wedge partial map between two versions,
// shipped instead of the full map when the shard still holds the delta
// history. The router applies it to its pinned copy — changed keys
// only, so a small mutation batch syncs in a few hundred bytes where
// the full map is megabytes.
//
//	magic   "bfpdlt1\n" (8 bytes)
//	uvarint from version (the base the delta applies to)
//	uvarint to version   (>= from; == from means "unchanged")
//	uvarint entry count
//	entries uvarint key delta, varint signed count delta (zigzag,
//	        nonzero; key = uint64(V)<<32 | W, strictly increasing)
//	crc32c  Castagnoli over everything above, little-endian (4 bytes)
//
// Full and delta frames are distinguished by magic: the router sniffs
// with PartialFrameKind and falls back to DecodePartial when the shard
// answered `?since=` with a full map (history evicted, epoch mismatch,
// or a freshly restarted shard).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"butterfly"
)

// partialDeltaMagic identifies (and versions) the delta wire format.
var partialDeltaMagic = [8]byte{'b', 'f', 'p', 'd', 'l', 't', '1', '\n'}

// Frame kinds reported by PartialFrameKind.
const (
	PartialFrameFull  = "full"
	PartialFrameDelta = "delta"
)

// PartialFrameKind sniffs a partial response body: PartialFrameFull,
// PartialFrameDelta, or "" when the magic matches neither codec.
func PartialFrameKind(b []byte) string {
	if len(b) >= 8 {
		switch [8]byte(b[:8]) {
		case partialMagic:
			return PartialFrameFull
		case partialDeltaMagic:
			return PartialFrameDelta
		}
	}
	return ""
}

// EncodePartialDelta serializes the signed partial-map change from
// version `from` to version `to`. Entries must be sorted by (V, W)
// with nonzero counts — what butterfly.WedgePartialDelta and
// SumWedgePartialDeltas produce.
func EncodePartialDelta(from, to uint64, delta []butterfly.WedgePartial) []byte {
	buf := make([]byte, 0, 8+30+15*len(delta))
	buf = append(buf, partialDeltaMagic[:]...)
	buf = binary.AppendUvarint(buf, from)
	buf = binary.AppendUvarint(buf, to)
	buf = binary.AppendUvarint(buf, uint64(len(delta)))
	prev := uint64(0)
	for _, p := range delta {
		key := uint64(p.V)<<32 | uint64(uint32(p.W))
		buf = binary.AppendUvarint(buf, key-prev)
		buf = binary.AppendVarint(buf, p.Count)
		prev = key
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// DecodePartialDelta parses an encoded delta frame, verifying magic
// and CRC32C before trusting any entry. The returned delta is sorted
// by (V, W) with nonzero signed counts.
func DecodePartialDelta(b []byte) (from, to uint64, delta []butterfly.WedgePartial, err error) {
	if len(b) < 8+4 || [8]byte(b[:8]) != partialDeltaMagic {
		return 0, 0, nil, fmt.Errorf("serveapi: partial delta: bad magic or short payload (%d bytes)", len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return 0, 0, nil, fmt.Errorf("serveapi: partial delta: crc mismatch (got %08x, want %08x)", got, want)
	}
	rest := body[8:]
	nextU := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("serveapi: partial delta: truncated %s", what)
		}
		rest = rest[n:]
		return v, nil
	}
	if from, err = nextU("from version"); err != nil {
		return 0, 0, nil, err
	}
	if to, err = nextU("to version"); err != nil {
		return 0, 0, nil, err
	}
	if to < from {
		return 0, 0, nil, fmt.Errorf("serveapi: partial delta: to version %d below from version %d", to, from)
	}
	count, err := nextU("entry count")
	if err != nil {
		return 0, 0, nil, err
	}
	if count > uint64(len(rest)/2) {
		return 0, 0, nil, fmt.Errorf("serveapi: partial delta: entry count %d exceeds payload", count)
	}
	delta = make([]butterfly.WedgePartial, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		kd, err := nextU("key delta")
		if err != nil {
			return 0, 0, nil, err
		}
		c, n := binary.Varint(rest)
		if n <= 0 {
			return 0, 0, nil, fmt.Errorf("serveapi: partial delta: truncated count delta")
		}
		rest = rest[n:]
		if c == 0 {
			return 0, 0, nil, fmt.Errorf("serveapi: partial delta: zero count delta at entry %d", i)
		}
		key := prev + kd
		if i > 0 && key <= prev {
			return 0, 0, nil, fmt.Errorf("serveapi: partial delta: keys not strictly increasing at entry %d", i)
		}
		prev = key
		delta = append(delta, butterfly.WedgePartial{
			V:     int32(key >> 32),
			W:     int32(uint32(key)),
			Count: c,
		})
	}
	if len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("serveapi: partial delta: %d trailing bytes after %d entries", len(rest), count)
	}
	return from, to, delta, nil
}
