package serveapi

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"butterfly"
)

func TestPartialDeltaRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		from, to uint64
		delta    []butterfly.WedgePartial
	}{
		{"empty-noop", 7, 7, nil},
		{"empty-advance", 3, 9, nil},
		{"one-positive", 1, 2, []butterfly.WedgePartial{{V: 0, W: 1, Count: 3}}},
		{"one-negative", 5, 6, []butterfly.WedgePartial{{V: 2, W: 7, Count: -4}}},
		{"mixed", 10, 14, []butterfly.WedgePartial{
			{V: 0, W: 1, Count: -1},
			{V: 0, W: 5, Count: 2},
			{V: 3, W: 4, Count: -1000000},
			{V: 1 << 20, W: 1<<20 + 1, Count: 9},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc := EncodePartialDelta(tc.from, tc.to, tc.delta)
			if kind := PartialFrameKind(enc); kind != PartialFrameDelta {
				t.Fatalf("frame kind = %q, want %q", kind, PartialFrameDelta)
			}
			from, to, got, err := DecodePartialDelta(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if from != tc.from || to != tc.to {
				t.Errorf("versions = %d→%d, want %d→%d", from, to, tc.from, tc.to)
			}
			if len(got) != len(tc.delta) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.delta))
			}
			for i := range got {
				if got[i] != tc.delta[i] {
					t.Errorf("entry %d = %+v, want %+v", i, got[i], tc.delta[i])
				}
			}
		})
	}
}

func TestPartialFrameKind(t *testing.T) {
	full := EncodePartial(1, []butterfly.WedgePartial{{V: 0, W: 1, Count: 2}})
	if kind := PartialFrameKind(full); kind != PartialFrameFull {
		t.Errorf("full frame sniffed as %q", kind)
	}
	delta := EncodePartialDelta(1, 2, nil)
	if kind := PartialFrameKind(delta); kind != PartialFrameDelta {
		t.Errorf("delta frame sniffed as %q", kind)
	}
	if kind := PartialFrameKind([]byte("not a frame either way")); kind != "" {
		t.Errorf("junk sniffed as %q", kind)
	}
	if kind := PartialFrameKind(nil); kind != "" {
		t.Errorf("nil sniffed as %q", kind)
	}
}

// TestPartialDeltaCorruptionMatrix exhaustively flips every byte and
// truncates at every length of an encoded frame: each corruption must
// be rejected (the CRC trailer catches anything the structural checks
// miss). Mirrors the full-map codec's corruption test, exhaustively.
func TestPartialDeltaCorruptionMatrix(t *testing.T) {
	enc := EncodePartialDelta(3, 8, []butterfly.WedgePartial{
		{V: 1, W: 2, Count: 5},
		{V: 1, W: 9, Count: -1},
		{V: 4, W: 6, Count: 1},
	})
	for i := range enc {
		for _, mask := range []byte{0xff, 0x01, 0x80} {
			flipped := bytes.Clone(enc)
			flipped[i] ^= mask
			if _, _, _, err := DecodePartialDelta(flipped); err == nil {
				t.Errorf("byte %d ^ %#02x accepted", i, mask)
			}
		}
	}
	for n := 0; n < len(enc); n++ {
		if _, _, _, err := DecodePartialDelta(enc[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	if _, _, _, err := DecodePartialDelta(append(bytes.Clone(enc), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// entry and the builders below hand-assemble delta frames with a
// valid CRC but invalid contents, to prove the structural checks are
// not relying on the checksum.
type entry struct {
	key   uint64
	count int64
}

func buildDeltaBody(from, to uint64, entries []entry) []byte {
	buf := append([]byte(nil), partialDeltaMagic[:]...)
	buf = binary.AppendUvarint(buf, from)
	buf = binary.AppendUvarint(buf, to)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	prev := uint64(0)
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, e.key-prev)
		buf = binary.AppendVarint(buf, e.count)
		prev = e.key
	}
	return buf
}

func sealDelta(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))
}

func TestPartialDeltaStructuralRejects(t *testing.T) {
	// A frame whose CRC is valid but whose contents violate invariants
	// must still be rejected: to < from, zero count deltas, duplicate
	// keys. Build them by hand through the encoder's building blocks.
	reseal := func(body []byte) []byte {
		return sealDelta(body)
	}

	// to < from.
	bad := buildDeltaBody(9, 3, nil)
	if _, _, _, err := DecodePartialDelta(reseal(bad)); err == nil {
		t.Error("to < from accepted")
	}

	// Zero count delta.
	bad = buildDeltaBody(1, 2, []entry{{key: 5, count: 0}})
	if _, _, _, err := DecodePartialDelta(reseal(bad)); err == nil {
		t.Error("zero count delta accepted")
	}

	// Non-increasing keys (second key delta of 0).
	bad = buildDeltaBody(1, 2, []entry{{key: 5, count: 1}, {key: 5, count: 2}})
	if _, _, _, err := DecodePartialDelta(reseal(bad)); err == nil {
		t.Error("duplicate key accepted")
	}
}
