package butterfly_test

import (
	"fmt"
	"log"

	"butterfly"
)

// The K(2,2) graph is the butterfly itself.
func ExampleGraph_Count() {
	g := butterfly.NewBuilder(2, 2).
		AddEdge(0, 0).AddEdge(0, 1).
		AddEdge(1, 0).AddEdge(1, 1).
		MustBuild()
	fmt.Println(g.Count())
	// Output: 1
}

// All eight derived algorithms agree by construction.
func ExampleGraph_CountInvariant() {
	g, err := butterfly.GenerateComplete(3, 4)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := g.CountInvariant(butterfly.Invariant1)
	b, _ := g.CountInvariant(butterfly.Invariant7)
	fmt.Println(a, b, a == b)
	// Output: 18 18 true
}

// Per-vertex counts sum to twice the total: each butterfly touches two
// vertices of either side.
func ExampleGraph_VertexButterflies() {
	g, err := butterfly.GenerateComplete(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	s, err := g.VertexButterflies(butterfly.V1)
	if err != nil {
		log.Fatal(err)
	}
	var sum int64
	for _, v := range s {
		sum += v
	}
	fmt.Println(s, sum == 2*g.Count())
	// Output: [6 6 6] true
}

// Each edge of K(3,3) lies in (3−1)·(3−1) = 4 butterflies.
func ExampleGraph_EdgeSupports() {
	g, err := butterfly.GenerateComplete(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.EdgeSupports()[0].Count)
	// Output: 4
}

// Peeling K(3,3) at its own support keeps it; one past destroys it.
func ExampleGraph_KWing() {
	g, err := butterfly.GenerateComplete(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	keep, _ := g.KWing(4)
	gone, _ := g.KWing(5)
	fmt.Println(keep.NumEdges(), gone.NumEdges())
	// Output: 9 0
}

// Butterflies enumerates motifs in lexicographic order.
func ExampleGraph_Butterflies() {
	g := butterfly.NewBuilder(2, 3).
		AddEdge(0, 0).AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 0).AddEdge(1, 1).AddEdge(1, 2).
		MustBuild()
	g.Butterflies(func(b butterfly.Butterfly) bool {
		fmt.Printf("{%d,%d}x{%d,%d}\n", b.U1, b.U2, b.W1, b.W2)
		return true
	})
	// Output:
	// {0,1}x{0,1}
	// {0,1}x{0,2}
	// {0,1}x{1,2}
}

// The dynamic counter reports exactly how many butterflies each update
// creates or destroys.
func ExampleDynamicCounter() {
	d, err := butterfly.NewDynamicCounter(2, 2)
	if err != nil {
		log.Fatal(err)
	}
	d.InsertEdge(0, 0)
	d.InsertEdge(0, 1)
	d.InsertEdge(1, 0)
	_, created, _ := d.InsertEdge(1, 1) // closes the square
	fmt.Println(created, d.Count())
	// Output: 1 1
}

// The FLAME derivation argument can be machine-checked per graph.
func ExampleGraph_VerifyDerivation() {
	g, err := butterfly.GenerateComplete(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.VerifyDerivation())
	// Output: <nil>
}

// Greedy butterfly-density peeling pulls out the planted dense block.
func ExampleGraph_DensestByButterflies() {
	b := butterfly.NewBuilder(100, 100)
	// Sparse background.
	for i := 0; i < 90; i++ {
		b.AddEdge(i, (i*37)%100)
	}
	// Dense 5×5 block on vertices 10–14.
	for u := 10; u < 15; u++ {
		for v := 10; v < 15; v++ {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	res, err := g.DensestByButterflies(butterfly.V1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Vertices, res.Butterflies)
	// Output: 5 100
}

// One-mode projection: pairs of same-side vertices with their shared
// neighbor counts.
func ExampleGraph_Project() {
	g, err := butterfly.GenerateComplete(3, 2)
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := g.Project(butterfly.V1, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("%d-%d shares %d\n", p.A, p.B, p.Shared)
	}
	// Output:
	// 0-1 shares 2
	// 0-2 shares 2
	// 1-2 shares 2
}

// The reservoir estimator is exact while the stream still fits.
func ExampleStreamEstimator() {
	s, err := butterfly.NewStreamEstimator(2, 2, 16, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if err := s.Add(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(s.Estimate())
	// Output: 1
}

// Labeled graphs carry names through every analysis.
func ExampleLabeledBuilder() {
	g, err := butterfly.NewLabeledBuilder().
		AddEdge("ana", "jazz").AddEdge("ana", "rock").
		AddEdge("ben", "jazz").AddEdge("ben", "rock").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Count(), g.HasEdgeLabeled("ana", "jazz"))
	// Output: 1 true
}
