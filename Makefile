GO ?= go

.PHONY: all build vet fmt test race bench tables verify examples cover clean smoke crash-smoke cluster-smoke bench-cluster qos-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .
	@test -z "$$(gofmt -l .)"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Regenerate every table/figure of the paper at full size.
tables:
	$(GO) run ./cmd/bfbench -table all | tee bench_full_output.txt

verify:
	$(GO) run ./cmd/bfverify -dataset arxiv-cond-mat -scale 10

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/algfamily
	$(GO) run ./examples/recommendation
	$(GO) run ./examples/authorship
	$(GO) run ./examples/streaming
	$(GO) run ./examples/derivation
	$(GO) run ./examples/anomaly

cover:
	$(GO) test -cover ./...

# Local mirror of the CI serve-smoke job: boot bfserved, drive mixed
# load through bfload, check /metrics, then SIGTERM and verify a clean
# drain.
smoke:
	$(GO) build -o bfserved ./cmd/bfserved
	$(GO) build -o bfload ./cmd/bfload
	./bfserved -addr 127.0.0.1:18080 -preload occupations@50 & \
	SERVER=$$!; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18080/healthz >/dev/null && break; \
		sleep 0.2; \
	done; \
	./bfload -addr 127.0.0.1:18080 -graph smoke -dataset github -scale 50 -n 1000 -c 8 -json - || { kill -9 $$SERVER; exit 1; }; \
	curl -sf http://127.0.0.1:18080/metrics | grep -q bfserved_requests_total || { kill -9 $$SERVER; exit 1; }; \
	kill -TERM $$SERVER; \
	wait $$SERVER
	rm -f bfserved bfload

# Local mirror of the CI store-recovery crash script: kill -9 a durable
# bfserved mid-flight and prove the restart serves the same state.
crash-smoke:
	./scripts/crash_recovery_smoke.sh

# Local mirror of the CI cluster-smoke job: 2 shards + router,
# partitioned vs single-home count agreement, kill -9 one shard
# mid-run (pinned exact + degraded scatter), WAL-replay restart, zero wrong counts.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Router-mode vs single-node throughput comparison (writes BENCH_PR9.json).
bench-cluster:
	./scripts/bench_cluster.sh

# Local mirror of the CI qos-smoke job: two tenants at 4:1 weights under
# saturating load must split scheduler grants ~4:1, and a batch-lane
# flood must leave interactive p99 within 2x solo (writes BENCH_PR10.json).
qos-smoke:
	./scripts/qos_smoke.sh

clean:
	rm -f bench_output.txt test_output.txt bfserved bfload
