GO ?= go

.PHONY: all build vet fmt test race bench tables verify examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .
	@test -z "$$(gofmt -l .)"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Regenerate every table/figure of the paper at full size.
tables:
	$(GO) run ./cmd/bfbench -table all | tee bench_full_output.txt

verify:
	$(GO) run ./cmd/bfverify -dataset arxiv-cond-mat -scale 10

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/algfamily
	$(GO) run ./examples/recommendation
	$(GO) run ./examples/authorship
	$(GO) run ./examples/streaming
	$(GO) run ./examples/derivation
	$(GO) run ./examples/anomaly

cover:
	$(GO) test -cover ./...

clean:
	rm -f bench_output.txt test_output.txt
