package butterfly

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInducedSubgraphAPI(t *testing.T) {
	g := randGraph(t, 51, 10, 8, 0.5)
	keep1 := make([]bool, 10)
	keep2 := make([]bool, 8)
	for i := range keep1 {
		keep1[i] = i%2 == 0
	}
	for i := range keep2 {
		keep2[i] = true
	}
	h, err := g.InducedSubgraph(keep1, keep2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumV1() != 10 || h.NumV2() != 8 {
		t.Fatal("sizes not preserved")
	}
	for u := 0; u < 10; u++ {
		for v := 0; v < 8; v++ {
			want := g.HasEdge(u, v) && keep1[u]
			if h.HasEdge(u, v) != want {
				t.Fatalf("edge (%d,%d) = %v, want %v", u, v, h.HasEdge(u, v), want)
			}
		}
	}
	// Nil masks keep everything.
	full, err := g.InducedSubgraph(nil, nil)
	if err != nil || !full.Equal(g) {
		t.Fatal("nil masks changed graph")
	}
	// Bad lengths error.
	if _, err := g.InducedSubgraph(make([]bool, 3), nil); err == nil {
		t.Fatal("bad keepV1 length accepted")
	}
	if _, err := g.InducedSubgraph(nil, make([]bool, 3)); err == nil {
		t.Fatal("bad keepV2 length accepted")
	}
}

func TestFilterEdgesAPI(t *testing.T) {
	g := k22(t)
	h := g.FilterEdges(func(u, v int) bool { return u == v })
	if h.NumEdges() != 2 || !h.HasEdge(0, 0) || h.HasEdge(0, 1) {
		t.Fatal("FilterEdges wrong")
	}
}

func TestPairButterfliesAndCommonNeighbors(t *testing.T) {
	g, err := GenerateComplete(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Any V1 pair in K(4,5) shares all 5 neighbors → C(5,2) = 10.
	got, err := g.PairButterflies(0, 3, V1)
	if err != nil || got != 10 {
		t.Fatalf("PairButterflies = %d, %v", got, err)
	}
	cn, err := g.CommonNeighbors(0, 3, V1)
	if err != nil || cn != 5 {
		t.Fatalf("CommonNeighbors = %d, %v", cn, err)
	}
	// V2 side: pairs share 4 neighbors → C(4,2) = 6.
	got, err = g.PairButterflies(1, 2, V2)
	if err != nil || got != 6 {
		t.Fatalf("V2 PairButterflies = %d, %v", got, err)
	}

	if _, err := g.PairButterflies(0, 0, V1); err == nil {
		t.Fatal("identical pair accepted")
	}
	if _, err := g.PairButterflies(0, 9, V1); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
	if _, err := g.PairButterflies(0, 1, Side(4)); err == nil {
		t.Fatal("bad side accepted")
	}
	if _, err := g.CommonNeighbors(0, 9, V2); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := g.CommonNeighbors(0, 1, Side(4)); err == nil {
		t.Fatal("bad side accepted")
	}
}

// Σ over all pairs of PairButterflies equals the total count.
func TestQuickPairButterfliesSumToCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := GenerateErdosRenyi(rng.Intn(8)+2, rng.Intn(8)+2, 0.5, seed)
		if err != nil {
			return false
		}
		var sum int64
		for a := 0; a < g.NumV1(); a++ {
			for b := a + 1; b < g.NumV1(); b++ {
				v, err := g.PairButterflies(a, b, V1)
				if err != nil {
					return false
				}
				sum += v
			}
		}
		return sum == g.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Induced subgraph counting agrees with masked per-vertex counting.
func TestQuickInducedSubgraphCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := GenerateErdosRenyi(rng.Intn(9)+2, rng.Intn(9)+2, 0.5, seed)
		if err != nil {
			return false
		}
		keep := make([]bool, g.NumV1())
		for i := range keep {
			keep[i] = rng.Intn(3) > 0
		}
		h, err := g.InducedSubgraph(keep, nil)
		if err != nil {
			return false
		}
		// Peeled vertices contribute nothing.
		s, err := h.VertexButterflies(V1)
		if err != nil {
			return false
		}
		for u, k := range keep {
			if !k && s[u] != 0 {
				return false
			}
		}
		return h.Count() <= g.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Soak test: a six-figure-edge graph where every public counting path
// must agree. Kept under a few seconds; guards real-scale regressions
// that tiny property tests cannot see.
func TestSoakLargeAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	g, err := GeneratePowerLaw(60000, 40000, 250000, 0.75, 0.7, 99)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Count()
	if want == 0 {
		t.Fatal("degenerate soak workload")
	}
	if got := g.CountParallel(6); got != want {
		t.Fatalf("parallel: %d, want %d", got, want)
	}
	got, err := g.CountWith(CountOptions{Invariant: Invariant7, BlockSize: 512})
	if err != nil || got != want {
		t.Fatalf("blocked Inv7: %d, %v", got, err)
	}
	got, err = g.CountWith(CountOptions{Algorithm: AlgorithmVertexPriority})
	if err != nil || got != want {
		t.Fatalf("vertex-priority: %d, %v", got, err)
	}
	d := NewDynamicCounterFromGraph(g)
	if d.Count() != want {
		t.Fatalf("dynamic: %d, want %d", d.Count(), want)
	}
}

func TestRewiredAPI(t *testing.T) {
	g := randGraph(t, 61, 60, 50, 0.2)
	h, err := g.Rewired(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("edges changed")
	}
	for u := 0; u < g.NumV1(); u++ {
		if h.DegreeV1(u) != g.DegreeV1(u) {
			t.Fatal("degree changed")
		}
	}
	if _, err := g.Rewired(-1, 1); err == nil {
		t.Fatal("negative swaps accepted")
	}
}

func TestButterflySignificance(t *testing.T) {
	// A graph dominated by a planted biclique must be significantly
	// butterfly-rich against its degree-preserving null model.
	b := NewBuilder(400, 400)
	g0, err := GenerateGnm(400, 400, 1200, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g0.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			b.AddEdge(200+u, 200+v)
		}
	}
	g := b.MustBuild()

	sig, err := g.ButterflySignificance(SignificanceOptions{Samples: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sig.Samples != 12 || sig.Observed != g.Count() {
		t.Fatalf("sig bookkeeping wrong: %+v", sig)
	}
	if float64(sig.Observed) <= sig.NullMean {
		t.Fatalf("planted structure not above null mean: %+v", sig)
	}
	if sig.ZScore < 3 {
		t.Fatalf("z-score %.1f too low for planted biclique", sig.ZScore)
	}

	if _, err := g.ButterflySignificance(SignificanceOptions{Samples: 1}); err == nil {
		t.Fatal("too few samples accepted")
	}
	if _, err := g.ButterflySignificance(SignificanceOptions{Samples: 3, SwapsPerEdge: -1}); err == nil {
		t.Fatal("negative swaps accepted")
	}
}

func TestButterflySignificanceDegenerate(t *testing.T) {
	// Complete bipartite graphs cannot be rewired: null std is 0 and the
	// observed count equals the null mean → z-score 0.
	g, err := GenerateComplete(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := g.ButterflySignificance(SignificanceOptions{Samples: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sig.NullStd != 0 || sig.ZScore != 0 {
		t.Fatalf("degenerate sig = %+v", sig)
	}
}
