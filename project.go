package butterfly

import (
	"fmt"

	"butterfly/internal/sparse"
)

// WeightedPair is one edge of a one-mode projection: two same-side
// vertices and the number of opposite-side neighbors they share (the
// wedge count β of the butterfly formula).
type WeightedPair struct {
	A, B   int
	Shared int64
}

// Project returns the one-mode projection of the graph onto the chosen
// side: every pair of same-side vertices with at least minShared
// common neighbors, with its common-neighbor count. Pairs are emitted
// with A < B in lexicographic order.
//
// This is the off-diagonal of B = AAᵀ (the paper's wedge matrix),
// computed with the sparse substrate; minShared ≥ 2 keeps exactly the
// pairs that form at least one butterfly — C(Shared, 2) of them, per
// PairButterflies. The projection is Θ(connected pairs); on hub-heavy
// graphs that can be quadratic in the side size, so filter early with
// minShared.
func (g *Graph) Project(side Side, minShared int64) ([]WeightedPair, error) {
	if minShared < 1 {
		return nil, fmt.Errorf("butterfly: minShared must be ≥ 1, got %d", minShared)
	}
	adj, adjT := g.g.Adj(), g.g.AdjT()
	switch side {
	case V1:
	case V2:
		adj, adjT = adjT, adj
	default:
		return nil, fmt.Errorf("butterfly: invalid side %d", int(side))
	}
	b := sparse.MxM(adj, adjT, sparse.PlusTimes)
	var out []WeightedPair
	for a := 0; a < b.R; a++ {
		row := b.Row(a)
		vals := b.RowVals(a)
		for k, j := range row {
			if int(j) <= a {
				continue // strictly upper triangle: A < B, each pair once
			}
			if vals[k] >= minShared {
				out = append(out, WeightedPair{A: a, B: int(j), Shared: vals[k]})
			}
		}
	}
	return out, nil
}
