package butterfly

import (
	"fmt"

	"butterfly/internal/bitvec"
	"butterfly/internal/sparse"
)

// InducedSubgraph keeps only edges whose endpoints are both enabled in
// the masks (a nil mask keeps that whole side). Vertex ids and set
// sizes are preserved — disabled vertices become isolated, matching
// the paper's mask-application semantics (equations (21)–(22)).
func (g *Graph) InducedSubgraph(keepV1, keepV2 []bool) (*Graph, error) {
	var m1, m2 *bitvec.Vector
	if keepV1 != nil {
		if len(keepV1) != g.NumV1() {
			return nil, fmt.Errorf("butterfly: keepV1 length %d, want %d", len(keepV1), g.NumV1())
		}
		m1 = bitvec.New(len(keepV1))
		for i, k := range keepV1 {
			if k {
				m1.Set(i)
			}
		}
	}
	if keepV2 != nil {
		if len(keepV2) != g.NumV2() {
			return nil, fmt.Errorf("butterfly: keepV2 length %d, want %d", len(keepV2), g.NumV2())
		}
		m2 = bitvec.New(len(keepV2))
		for i, k := range keepV2 {
			if k {
				m2.Set(i)
			}
		}
	}
	return &Graph{g: g.g.InducedSubgraph(m1, m2)}, nil
}

// FilterEdges keeps only edges for which keep returns true; vertex ids
// and set sizes are preserved.
func (g *Graph) FilterEdges(keep func(u, v int) bool) *Graph {
	return &Graph{g: g.g.FilterEdges(func(u, v int32) bool { return keep(int(u), int(v)) })}
}

// PairButterflies returns the number of butterflies whose two
// same-side vertices are exactly {a, b} on the given side: C(β, 2)
// where β is the pair's common-neighbor count. a and b must be
// distinct, valid vertices of that side.
func (g *Graph) PairButterflies(a, b int, side Side) (int64, error) {
	n := g.NumV1()
	adj := g.g.Adj()
	if side == V2 {
		n = g.NumV2()
		adj = g.g.AdjT()
	} else if side != V1 {
		return 0, fmt.Errorf("butterfly: invalid side %d", int(side))
	}
	if a < 0 || a >= n || b < 0 || b >= n {
		return 0, fmt.Errorf("butterfly: pair (%d,%d) out of range [0,%d)", a, b, n)
	}
	if a == b {
		return 0, fmt.Errorf("butterfly: pair endpoints must be distinct")
	}
	beta := sparse.DotRows(adj, a, adj, b)
	return beta * (beta - 1) / 2, nil
}

// CommonNeighbors returns |N(a) ∩ N(b)| for two same-side vertices —
// the wedge count β the butterfly formula C(β, 2) is built from.
func (g *Graph) CommonNeighbors(a, b int, side Side) (int64, error) {
	n := g.NumV1()
	adj := g.g.Adj()
	if side == V2 {
		n = g.NumV2()
		adj = g.g.AdjT()
	} else if side != V1 {
		return 0, fmt.Errorf("butterfly: invalid side %d", int(side))
	}
	if a < 0 || a >= n || b < 0 || b >= n {
		return 0, fmt.Errorf("butterfly: pair (%d,%d) out of range [0,%d)", a, b, n)
	}
	return sparse.DotRows(adj, a, adj, b), nil
}
