package butterfly

import "fmt"

// LabeledBuilder accumulates edges between string-identified vertices,
// interning labels into dense integer ids — the usual shape of
// real-world input (author names × paper titles, users × products).
// Vertex-set sizes need not be known up front.
type LabeledBuilder struct {
	idx1, idx2     map[string]int
	names1, names2 []string
	edges          [][2]int
}

// NewLabeledBuilder returns an empty builder.
func NewLabeledBuilder() *LabeledBuilder {
	return &LabeledBuilder{idx1: map[string]int{}, idx2: map[string]int{}}
}

// AddEdge records an edge between the V1 vertex labeled u and the V2
// vertex labeled v, interning unseen labels. Duplicates collapse at
// Build time.
func (b *LabeledBuilder) AddEdge(u, v string) *LabeledBuilder {
	ui, ok := b.idx1[u]
	if !ok {
		ui = len(b.names1)
		b.idx1[u] = ui
		b.names1 = append(b.names1, u)
	}
	vi, ok := b.idx2[v]
	if !ok {
		vi = len(b.names2)
		b.idx2[v] = vi
		b.names2 = append(b.names2, v)
	}
	b.edges = append(b.edges, [2]int{ui, vi})
	return b
}

// Len returns the number of recorded edge events (before dedup).
func (b *LabeledBuilder) Len() int { return len(b.edges) }

// Build finalizes the labeled graph.
func (b *LabeledBuilder) Build() (*LabeledGraph, error) {
	g, err := FromEdges(len(b.names1), len(b.names2), b.edges)
	if err != nil {
		return nil, err
	}
	return &LabeledGraph{
		Graph:  g,
		names1: append([]string(nil), b.names1...),
		names2: append([]string(nil), b.names2...),
		idx1:   copyIndex(b.idx1),
		idx2:   copyIndex(b.idx2),
	}, nil
}

func copyIndex(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// LabeledGraph is a Graph whose vertices carry string labels. All
// Graph methods are available; ids in their results translate back
// through LabelV1/LabelV2.
type LabeledGraph struct {
	*Graph
	names1, names2 []string
	idx1, idx2     map[string]int
}

// LabelV1 returns the label of V1 vertex id.
func (g *LabeledGraph) LabelV1(id int) (string, error) {
	if id < 0 || id >= len(g.names1) {
		return "", fmt.Errorf("butterfly: V1 id %d out of range [0,%d)", id, len(g.names1))
	}
	return g.names1[id], nil
}

// LabelV2 returns the label of V2 vertex id.
func (g *LabeledGraph) LabelV2(id int) (string, error) {
	if id < 0 || id >= len(g.names2) {
		return "", fmt.Errorf("butterfly: V2 id %d out of range [0,%d)", id, len(g.names2))
	}
	return g.names2[id], nil
}

// IDV1 returns the id of the V1 vertex with the given label.
func (g *LabeledGraph) IDV1(label string) (int, bool) {
	id, ok := g.idx1[label]
	return id, ok
}

// IDV2 returns the id of the V2 vertex with the given label.
func (g *LabeledGraph) IDV2(label string) (int, bool) {
	id, ok := g.idx2[label]
	return id, ok
}

// HasEdgeLabeled reports whether the edge between the labeled vertices
// exists; unknown labels are simply absent edges.
func (g *LabeledGraph) HasEdgeLabeled(u, v string) bool {
	ui, ok1 := g.idx1[u]
	vi, ok2 := g.idx2[v]
	return ok1 && ok2 && g.HasEdge(ui, vi)
}
