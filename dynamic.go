package butterfly

import (
	"fmt"

	"butterfly/internal/dynamic"
)

// DynamicCounter maintains an exact butterfly count under edge
// insertions and deletions — the streaming companion to the static
// family. Each update costs a local set-intersection sweep (the
// support of the touched edge) instead of a recount. Not safe for
// concurrent mutation.
type DynamicCounter struct {
	c *dynamic.Counter
}

// NewDynamicCounter returns an empty counter over vertex sets of size
// m and n.
func NewDynamicCounter(m, n int) (*DynamicCounter, error) {
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("butterfly: negative vertex-set size %d/%d", m, n)
	}
	return &DynamicCounter{c: dynamic.New(m, n)}, nil
}

// NewDynamicCounterFromGraph seeds a counter with g's edges.
func NewDynamicCounterFromGraph(g *Graph) *DynamicCounter {
	return &DynamicCounter{c: dynamic.FromGraph(g.g)}
}

// Count returns the current butterfly count.
func (d *DynamicCounter) Count() int64 { return d.c.Count() }

// NumEdges returns the current edge count.
func (d *DynamicCounter) NumEdges() int64 { return d.c.NumEdges() }

// HasEdge reports whether (u, v) is present; out-of-range is false.
func (d *DynamicCounter) HasEdge(u, v int) bool { return d.c.HasEdge(u, v) }

// InsertEdge adds (u, v); it reports whether the edge was new and how
// many butterflies it created. Out-of-range endpoints error.
func (d *DynamicCounter) InsertEdge(u, v int) (added bool, created int64, err error) {
	if u < 0 || u >= d.c.NumV1() || v < 0 || v >= d.c.NumV2() {
		return false, 0, fmt.Errorf("butterfly: edge (%d,%d) out of range %dx%d", u, v, d.c.NumV1(), d.c.NumV2())
	}
	added, created = d.c.InsertEdge(u, v)
	return added, created, nil
}

// DeleteEdge removes (u, v); it reports whether the edge existed and
// how many butterflies it destroyed.
func (d *DynamicCounter) DeleteEdge(u, v int) (removed bool, destroyed int64, err error) {
	if u < 0 || u >= d.c.NumV1() || v < 0 || v >= d.c.NumV2() {
		return false, 0, fmt.Errorf("butterfly: edge (%d,%d) out of range %dx%d", u, v, d.c.NumV1(), d.c.NumV2())
	}
	removed, destroyed = d.c.DeleteEdge(u, v)
	return removed, destroyed, nil
}

// Snapshot materializes the current state as an immutable Graph.
func (d *DynamicCounter) Snapshot() *Graph { return &Graph{g: d.c.Snapshot()} }
