package butterfly

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProjectCompleteBipartite(t *testing.T) {
	g, err := GenerateComplete(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := g.Project(V1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every V1 pair shares all 3 neighbors: C(4,2) = 6 pairs.
	if len(pairs) != 6 {
		t.Fatalf("%d pairs, want 6", len(pairs))
	}
	for _, p := range pairs {
		if p.Shared != 3 || p.A >= p.B {
			t.Fatalf("bad pair %+v", p)
		}
	}
	// V2 side: C(3,2) = 3 pairs sharing 4.
	pairs, err = g.Project(V2, 4)
	if err != nil || len(pairs) != 3 {
		t.Fatalf("V2 pairs = %d, %v", len(pairs), err)
	}
	// Threshold filters.
	pairs, err = g.Project(V2, 5)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("threshold failed: %d pairs", len(pairs))
	}
}

func TestProjectErrors(t *testing.T) {
	g := k22(t)
	if _, err := g.Project(V1, 0); err == nil {
		t.Fatal("minShared 0 accepted")
	}
	if _, err := g.Project(Side(9), 1); err == nil {
		t.Fatal("bad side accepted")
	}
}

// Projection agrees with CommonNeighbors pairwise, and pairs with
// Shared ≥ 2 carry exactly C(Shared, 2) butterflies.
func TestQuickProjectConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := GenerateErdosRenyi(rng.Intn(8)+2, rng.Intn(8)+2, 0.5, seed)
		if err != nil {
			return false
		}
		pairs, err := g.Project(V1, 1)
		if err != nil {
			return false
		}
		seen := map[[2]int]int64{}
		for _, p := range pairs {
			seen[[2]int{p.A, p.B}] = p.Shared
		}
		var totalButterflies int64
		for a := 0; a < g.NumV1(); a++ {
			for b := a + 1; b < g.NumV1(); b++ {
				cn, err := g.CommonNeighbors(a, b, V1)
				if err != nil {
					return false
				}
				if cn > 0 && seen[[2]int{a, b}] != cn {
					return false
				}
				if cn == 0 {
					if _, present := seen[[2]int{a, b}]; present {
						return false
					}
				}
				totalButterflies += cn * (cn - 1) / 2
			}
		}
		return totalButterflies == g.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
